//! Triangular solves: forward and backward substitution.
//!
//! These operate on the factor produced by [`crate::cholesky`]: a lower
//! triangle stored in the lower part of a square matrix (entries above
//! the diagonal are ignored, matching the AtA convention of never
//! touching the strictly-upper triangle).

use ata_mat::{MatRef, Scalar};

/// Solve `L y = b` (forward substitution) where `L` is the lower
/// triangle of `l`.
///
/// # Panics
/// If shapes mismatch or a diagonal entry is zero.
pub fn solve_lower<T: Scalar>(l: MatRef<'_, T>, b: &[T]) -> Vec<T> {
    let mut y = b.to_vec();
    solve_lower_in_place(l, &mut y);
    y
}

/// Allocation-free [`solve_lower`]: `b` is overwritten with `y`.
///
/// # Panics
/// If shapes mismatch or a diagonal entry is zero.
pub fn solve_lower_in_place<T: Scalar>(l: MatRef<'_, T>, b: &mut [T]) {
    let n = l.rows();
    assert_eq!(l.cols(), n, "solve_lower needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    for i in 0..n {
        let row = l.row(i);
        let mut s = b[i];
        for (k, yk) in b[..i].iter().enumerate() {
            s -= row[k] * *yk;
        }
        let d = row[i];
        assert!(d != T::ZERO, "zero diagonal at {i}");
        b[i] = s * T::from_f64(1.0 / d.to_f64());
    }
}

/// Solve `L^T x = y` (backward substitution with the transposed lower
/// factor; `L^T` is never materialized).
///
/// # Panics
/// If shapes mismatch or a diagonal entry is zero.
pub fn solve_lower_transposed<T: Scalar>(l: MatRef<'_, T>, y: &[T]) -> Vec<T> {
    let mut x = y.to_vec();
    solve_lower_transposed_in_place(l, &mut x);
    x
}

/// Allocation-free [`solve_lower_transposed`]: `y` is overwritten with
/// `x`.
///
/// # Panics
/// If shapes mismatch or a diagonal entry is zero.
pub fn solve_lower_transposed_in_place<T: Scalar>(l: MatRef<'_, T>, y: &mut [T]) {
    let n = l.rows();
    assert_eq!(l.cols(), n, "solve_lower_transposed needs a square matrix");
    assert_eq!(y.len(), n, "rhs length mismatch");
    for i in (0..n).rev() {
        let mut s = y[i];
        // L^T[i, k] = L[k, i] for k > i.
        for (k, &xv) in y.iter().enumerate().skip(i + 1) {
            s -= *l.at(k, i) * xv;
        }
        let d = *l.at(i, i);
        assert!(d != T::ZERO, "zero diagonal at {i}");
        y[i] = s * T::from_f64(1.0 / d.to_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::Matrix;

    fn lower_example() -> Matrix<f64> {
        // L = [[2,0,0],[1,3,0],[4,5,6]]; upper entries are garbage on
        // purpose — solvers must ignore them.
        Matrix::from_vec(vec![2.0, 99.0, 99.0, 1.0, 3.0, 99.0, 4.0, 5.0, 6.0], 3, 3)
    }

    #[test]
    fn forward_substitution() {
        let l = lower_example();
        // b = L * [1, 2, 3]^T = [2, 7, 32].
        let y = solve_lower(l.as_ref(), &[2.0, 7.0, 32.0]);
        assert!((y[0] - 1.0).abs() < 1e-14);
        assert!((y[1] - 2.0).abs() < 1e-14);
        assert!((y[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn backward_substitution_with_transpose() {
        let l = lower_example();
        // L^T * [1, 2, 3]^T = [2*1+1*2+4*3, 3*2+5*3, 6*3] = [16, 21, 18].
        let x = solve_lower_transposed(l.as_ref(), &[16.0, 21.0, 18.0]);
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
        assert!((x[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn roundtrip_forward_then_backward() {
        let l = lower_example();
        let b = [5.0, -1.0, 2.5];
        let y = solve_lower(l.as_ref(), &b);
        let x = solve_lower_transposed(l.as_ref(), &y);
        // Verify L L^T x = b.
        let mut check = [0.0f64; 3];
        for i in 0..3 {
            for j in 0..3 {
                // (L L^T)[i][j] = sum_k L[i][k] L[j][k], k <= min(i,j)
                let mut g = 0.0;
                for k in 0..=i.min(j) {
                    g += l[(i, k)] * l[(j, k)];
                }
                check[i] += g * x[j];
            }
        }
        for i in 0..3 {
            assert!((check[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn singular_factor_rejected() {
        let l = Matrix::from_vec(vec![1.0, 0.0, 0.0, 0.0], 2, 2);
        let _ = solve_lower(l.as_ref(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn rhs_length_checked() {
        let l = lower_example();
        let _ = solve_lower(l.as_ref(), &[1.0]);
    }
}
