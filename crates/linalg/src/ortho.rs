//! Orthogonalization helpers — §1: the Gram product "is a
//! straightforward, yet effective, method to check for orthogonality
//! [...] repeatedly computed in the Gram-Schmidt algorithm".

use crate::gram_full_opts;
use ata_core::AtaOptions;
use ata_kernels::level1::{axpy, dot, nrm2, scal};
use ata_mat::{MatRef, Matrix, Scalar};

/// Modified Gram–Schmidt on the columns of `a`: returns `Q` (`m x n`)
/// with orthonormal columns spanning the same space.
///
/// # Panics
/// If a column is (numerically) linearly dependent on its predecessors
/// (norm below `1e-12 * ||A||`).
pub fn mgs_orthonormalize<T: Scalar>(a: MatRef<'_, T>) -> Matrix<T> {
    let (m, n) = a.shape();
    let mut q = a.to_matrix();
    let scale_floor = 1e-12 * a.frobenius().max(1.0);

    // Column-major working copy for contiguous column access.
    let mut cols: Vec<Vec<T>> = (0..n)
        .map(|j| (0..m).map(|i| q[(i, j)]).collect())
        .collect();

    for j in 0..n {
        let norm = nrm2(&cols[j]);
        assert!(norm > scale_floor, "column {j} is linearly dependent");
        let inv = T::from_f64(1.0 / norm);
        scal(inv, &mut cols[j]);
        let (head, tail) = cols.split_at_mut(j + 1);
        let qj = &head[j];
        for ck in tail.iter_mut() {
            let r = dot(qj, ck);
            axpy(-r, qj, ck);
        }
    }
    for j in 0..n {
        for i in 0..m {
            q[(i, j)] = cols[j][i];
        }
    }
    q
}

/// Orthogonality defect `max_ij |Q^T Q - I|`, computed with a single
/// AtA product — the paper's one-product orthogonality check.
pub fn orthogonality_defect<T: Scalar>(q: MatRef<'_, T>, opts: &AtaOptions) -> f64 {
    let g = gram_full_opts(q, opts);
    let n = q.cols();
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let expect = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((g[(i, j)].to_f64() - expect).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::gen;

    #[test]
    fn mgs_produces_orthonormal_basis() {
        let a = gen::standard::<f64>(1, 40, 12);
        let q = mgs_orthonormalize(a.as_ref());
        let defect = orthogonality_defect(q.as_ref(), &AtaOptions::serial());
        assert!(defect < 1e-12, "defect {defect}");
    }

    #[test]
    fn mgs_preserves_column_span() {
        // Each original column must be expressible in the Q basis:
        // ||(I - Q Q^T) a_j|| ~ 0.
        let (m, n) = (20usize, 5usize);
        let a = gen::standard::<f64>(2, m, n);
        let q = mgs_orthonormalize(a.as_ref());
        for j in 0..n {
            let mut residual: Vec<f64> = (0..m).map(|i| a[(i, j)]).collect();
            for c in 0..n {
                let coef: f64 = (0..m).map(|i| q[(i, c)] * a[(i, j)]).sum();
                for (i, r) in residual.iter_mut().enumerate() {
                    *r -= coef * q[(i, c)];
                }
            }
            let norm: f64 = residual.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(norm < 1e-10, "column {j} left the span: {norm}");
        }
    }

    #[test]
    fn defect_detects_non_orthogonal_input() {
        let a = gen::standard::<f64>(3, 30, 8);
        assert!(orthogonality_defect(a.as_ref(), &AtaOptions::serial()) > 0.5);
    }

    #[test]
    fn already_orthogonal_input_is_fixed_point() {
        let eye = Matrix::<f64>::identity(6);
        let q = mgs_orthonormalize(eye.as_ref());
        assert!(q.max_abs_diff(&eye) < 1e-14);
    }

    #[test]
    #[should_panic(expected = "linearly dependent")]
    fn dependent_columns_rejected() {
        let mut a = gen::standard::<f64>(4, 10, 3);
        for i in 0..10 {
            a[(i, 2)] = 2.0 * a[(i, 1)];
        }
        let _ = mgs_orthonormalize(a.as_ref());
    }
}
