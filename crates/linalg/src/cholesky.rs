//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The Gram matrix `A^T A` of a full-column-rank `A` is SPD (§1 cites
//! Strang for its properties), which makes Cholesky the natural factor
//! for the normal equations. The factorization works in place on the
//! lower triangle — the same storage discipline as AtA's output, so a
//! `lower(A^T A)` result can be factored without touching the (unused)
//! upper part.

use crate::triangular::{solve_lower, solve_lower_transposed};
use ata_mat::{Matrix, Scalar};

/// Failure modes of the factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyError {
    /// A pivot was zero or negative: the matrix is not positive
    /// definite (for a Gram matrix this means rank-deficient `A`).
    NotPositiveDefinite {
        /// Column at which the pivot failed.
        column: usize,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite { column } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot at column {column})"
                )
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Factor the lower triangle of `g` in place: on success the lower part
/// holds `L` with `G = L L^T`. The strictly-upper part is left exactly
/// as it was.
///
/// # Errors
/// [`CholeskyError::NotPositiveDefinite`] if a pivot is `<= 0`.
///
/// # Panics
/// If `g` is not square.
pub fn cholesky_factor<T: Scalar>(g: &mut Matrix<T>) -> Result<(), CholeskyError> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "cholesky needs a square matrix");
    for j in 0..n {
        let mut d = g[(j, j)].to_f64();
        for k in 0..j {
            let v = g[(j, k)].to_f64();
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(CholeskyError::NotPositiveDefinite { column: j });
        }
        let d_sqrt = d.sqrt();
        g[(j, j)] = T::from_f64(d_sqrt);
        let inv = 1.0 / d_sqrt;
        for i in (j + 1)..n {
            let mut s = g[(i, j)].to_f64();
            for k in 0..j {
                s -= g[(i, k)].to_f64() * g[(j, k)].to_f64();
            }
            g[(i, j)] = T::from_f64(s * inv);
        }
    }
    Ok(())
}

/// Solve `G x = b` given the factor from [`cholesky_factor`]
/// (`L L^T x = b`: one forward, one backward substitution).
///
/// # Panics
/// On shape mismatch or a zero diagonal.
pub fn cholesky_solve<T: Scalar>(l: &Matrix<T>, b: &[T]) -> Vec<T> {
    let y = solve_lower(l.as_ref(), b);
    solve_lower_transposed(l.as_ref(), &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};

    /// Build an SPD matrix as A^T A + eps I.
    fn spd(n: usize, seed: u64) -> Matrix<f64> {
        let a = gen::standard::<f64>(seed, n + 4, n);
        let mut g = reference::gram(a.as_ref());
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let n = 8;
        let g = spd(n, 1);
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        // Check L L^T == G on the lower triangle.
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - g[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn factor_preserves_strict_upper() {
        let mut g = spd(5, 2);
        // Poison the upper triangle; factorization must not read or
        // write it.
        for i in 0..5 {
            for j in (i + 1)..5 {
                g[(i, j)] = f64::NAN;
            }
        }
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        for i in 0..5 {
            for j in 0..=i {
                assert!(l[(i, j)].is_finite());
            }
            for j in (i + 1)..5 {
                assert!(l[(i, j)].is_nan(), "upper must be untouched");
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let n = 10;
        let g = spd(n, 3);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 - 4.0) * 0.3).collect();
        // b = G x.
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += g[(i, j)] * x_true[j];
            }
        }
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        let x = cholesky_solve(&l, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_matrix_reports_column() {
        let mut g = Matrix::<f64>::identity(3);
        g[(2, 2)] = -1.0;
        let err = cholesky_factor(&mut g).expect_err("not PD");
        assert_eq!(err, CholeskyError::NotPositiveDefinite { column: 2 });
        assert!(err.to_string().contains("column 2"));
    }

    #[test]
    fn rank_deficient_gram_detected() {
        // A with a repeated column -> singular Gram matrix.
        let a = Matrix::from_fn(6, 3, |i, j| {
            if j == 2 {
                (i + 1) as f64
            } else {
                ((i + 1) * (j + 1)) as f64
            }
        });
        let mut a2 = a.clone();
        for i in 0..6 {
            a2[(i, 2)] = a[(i, 0)]; // duplicate column 0
        }
        let mut g = reference::gram(a2.as_ref());
        assert!(cholesky_factor(&mut g).is_err());
    }
}
