//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The Gram matrix `A^T A` of a full-column-rank `A` is SPD (§1 cites
//! Strang for its properties), which makes Cholesky the natural factor
//! for the normal equations. The factorization works in place on the
//! lower triangle — the same storage discipline as AtA's output, so a
//! `lower(A^T A)` result can be factored without touching the (unused)
//! upper part.
//!
//! All `O(n³)` arithmetic runs in `T` (visible to the op-counting
//! `Tracked` scalar); only the per-column square root and reciprocal go
//! through `f64`, as uncounted bookkeeping — the same convention as the
//! streaming kernels in [`crate::update`].

use crate::triangular::{solve_lower_in_place, solve_lower_transposed_in_place};
use ata_mat::{MatRef, Matrix, Scalar};

/// Failure modes of the factorization and its solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyError {
    /// A pivot was zero or negative: the matrix is not positive
    /// definite (for a Gram matrix this means rank-deficient `A`).
    NotPositiveDefinite {
        /// Column at which the pivot failed.
        column: usize,
    },
    /// A right-hand side's length does not match the factor's order.
    ShapeMismatch {
        /// Expected dimension (the factor's order `n`).
        expected: usize,
        /// Offending dimension supplied by the caller.
        got: usize,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite { column } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot at column {column})"
                )
            }
            CholeskyError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "right-hand side shape mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Factor the lower triangle of `g` in place: on success the lower part
/// holds `L` with `G = L L^T`. The strictly-upper part is left exactly
/// as it was.
///
/// # Errors
/// [`CholeskyError::NotPositiveDefinite`] if a pivot is `<= 0`.
///
/// # Panics
/// If `g` is not square.
pub fn cholesky_factor<T: Scalar>(g: &mut Matrix<T>) -> Result<(), CholeskyError> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "cholesky needs a square matrix");
    for j in 0..n {
        let mut d = g[(j, j)];
        for k in 0..j {
            let v = g[(j, k)];
            d -= v * v;
        }
        let df = d.to_f64();
        if df <= 0.0 || !df.is_finite() {
            return Err(CholeskyError::NotPositiveDefinite { column: j });
        }
        let d_sqrt = df.sqrt();
        g[(j, j)] = T::from_f64(d_sqrt);
        let inv = T::from_f64(1.0 / d_sqrt);
        for i in (j + 1)..n {
            let mut s = g[(i, j)];
            for k in 0..j {
                s -= g[(i, k)] * g[(j, k)];
            }
            g[(i, j)] = s * inv;
        }
    }
    Ok(())
}

/// Solve `G x = b` given the factor from [`cholesky_factor`]
/// (`L L^T x = b`: one forward, one backward substitution).
///
/// # Errors
/// [`CholeskyError::ShapeMismatch`] if `b.len()` does not equal the
/// factor's order.
///
/// # Panics
/// If `l` is not square or has a zero diagonal (a corrupt factor —
/// [`cholesky_factor`] never returns one).
pub fn cholesky_solve<T: Scalar>(l: &Matrix<T>, b: &[T]) -> Result<Vec<T>, CholeskyError> {
    let mut x = b.to_vec();
    cholesky_solve_in_place(l, &mut x)?;
    Ok(x)
}

/// In-place, allocation-free variant of [`cholesky_solve`]: `rhs` is
/// overwritten with the solution.
///
/// # Errors
/// [`CholeskyError::ShapeMismatch`] if `rhs.len()` does not equal the
/// factor's order (the rhs is untouched).
///
/// # Panics
/// As [`cholesky_solve`].
pub fn cholesky_solve_in_place<T: Scalar>(
    l: &Matrix<T>,
    rhs: &mut [T],
) -> Result<(), CholeskyError> {
    let n = l.rows();
    if rhs.len() != n {
        return Err(CholeskyError::ShapeMismatch {
            expected: n,
            got: rhs.len(),
        });
    }
    solve_lower_in_place(l.as_ref(), rhs);
    solve_lower_transposed_in_place(l.as_ref(), rhs);
    Ok(())
}

/// Multi-rhs variant of [`cholesky_solve`]: solve `G X = B` for an
/// `n × p` right-hand-side block, column by column.
///
/// # Errors
/// [`CholeskyError::ShapeMismatch`] if `b` does not have `n` rows.
///
/// # Panics
/// As [`cholesky_solve`].
pub fn cholesky_solve_multi<T: Scalar>(
    l: &Matrix<T>,
    b: MatRef<'_, T>,
) -> Result<Matrix<T>, CholeskyError> {
    let n = l.rows();
    if b.rows() != n {
        return Err(CholeskyError::ShapeMismatch {
            expected: n,
            got: b.rows(),
        });
    }
    let p = b.cols();
    let mut out = Matrix::zeros(n, p);
    let mut col = vec![T::ZERO; n];
    for c in 0..p {
        for (i, cv) in col.iter_mut().enumerate() {
            *cv = *b.at(i, c);
        }
        cholesky_solve_in_place(l, &mut col)?;
        for (i, cv) in col.iter().enumerate() {
            out[(i, c)] = *cv;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};

    /// Build an SPD matrix as A^T A + eps I.
    fn spd(n: usize, seed: u64) -> Matrix<f64> {
        let a = gen::standard::<f64>(seed, n + 4, n);
        let mut g = reference::gram(a.as_ref());
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let n = 8;
        let g = spd(n, 1);
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        // Check L L^T == G on the lower triangle.
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - g[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn factor_preserves_strict_upper() {
        let mut g = spd(5, 2);
        // Poison the upper triangle; factorization must not read or
        // write it.
        for i in 0..5 {
            for j in (i + 1)..5 {
                g[(i, j)] = f64::NAN;
            }
        }
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        for i in 0..5 {
            for j in 0..=i {
                assert!(l[(i, j)].is_finite());
            }
            for j in (i + 1)..5 {
                assert!(l[(i, j)].is_nan(), "upper must be untouched");
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let n = 10;
        let g = spd(n, 3);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 - 4.0) * 0.3).collect();
        // b = G x.
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += g[(i, j)] * x_true[j];
            }
        }
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        let x = cholesky_solve(&l, &b).expect("shape");
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_rejects_bad_rhs_length() {
        let mut l = spd(4, 7);
        cholesky_factor(&mut l).expect("SPD");
        assert_eq!(
            cholesky_solve(&l, &[1.0; 3]).unwrap_err(),
            CholeskyError::ShapeMismatch {
                expected: 4,
                got: 3
            }
        );
        let mut short = [1.0; 3];
        assert!(cholesky_solve_in_place(&l, &mut short).is_err());
        assert_eq!(short, [1.0; 3], "rejected rhs must be untouched");
    }

    #[test]
    fn multi_rhs_matches_column_solves() {
        let n = 6;
        let g = spd(n, 8);
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        let b = Matrix::from_fn(n, 3, |i, c| ((i * 3 + c) as f64 * 0.31).sin());
        let xs = cholesky_solve_multi(&l, b.as_ref()).expect("shape");
        for c in 0..3 {
            let col: Vec<f64> = (0..n).map(|i| b[(i, c)]).collect();
            let x = cholesky_solve(&l, &col).expect("shape");
            for i in 0..n {
                assert!((xs[(i, c)] - x[i]).abs() < 1e-12);
            }
        }
        let wide = Matrix::<f64>::zeros(n + 1, 2);
        assert!(cholesky_solve_multi(&l, wide.as_ref()).is_err());
    }

    #[test]
    fn indefinite_matrix_reports_column() {
        let mut g = Matrix::<f64>::identity(3);
        g[(2, 2)] = -1.0;
        let err = cholesky_factor(&mut g).expect_err("not PD");
        assert_eq!(err, CholeskyError::NotPositiveDefinite { column: 2 });
        assert!(err.to_string().contains("column 2"));
    }

    #[test]
    fn rank_deficient_gram_detected() {
        // A with a repeated column -> singular Gram matrix.
        let a = Matrix::from_fn(6, 3, |i, j| {
            if j == 2 {
                (i + 1) as f64
            } else {
                ((i + 1) * (j + 1)) as f64
            }
        });
        let mut a2 = a.clone();
        for i in 0..6 {
            a2[(i, 2)] = a[(i, 0)]; // duplicate column 0
        }
        let mut g = reference::gram(a2.as_ref());
        assert!(cholesky_factor(&mut g).is_err());
    }
}
