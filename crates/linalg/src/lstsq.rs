//! Least squares via the normal equations — the paper's §1 example:
//! "One way to solve the least squares problem of under and over
//! determined linear systems `A x = b` is to solve the associated
//! system of normal equations [...] `A^T A x = A^T b`."
//!
//! The Gram matrix is computed with AtA (this is exactly the workload
//! the paper accelerates); the SPD system is then factored with
//! Cholesky. Note the classical caveat: forming `A^T A` squares the
//! condition number of `A`, so this path is appropriate for
//! well-conditioned problems — which is also the regime where it is the
//! fastest dense method.

use crate::cholesky::{cholesky_factor, cholesky_solve, CholeskyError};
use crate::gram_lower_opts;
use ata_core::AtaOptions;
use ata_kernels::gemm_tn;
use ata_mat::{MatRef, Matrix, Scalar};

/// Solve `min_x ||A x - b||_2` through the normal equations.
///
/// `A` is `m x n` with `m >= n` and full column rank; `b` has length
/// `m`. Returns the coefficient vector of length `n`.
///
/// # Errors
/// [`CholeskyError::NotPositiveDefinite`] when `A` is (numerically)
/// rank-deficient.
///
/// # Panics
/// If `b.len() != m` or `m < n`.
pub fn solve_normal_equations<T: Scalar>(
    a: MatRef<'_, T>,
    b: &[T],
    opts: &AtaOptions,
) -> Result<Vec<T>, CholeskyError> {
    let (m, n) = a.shape();
    assert!(
        m >= n,
        "normal equations need an overdetermined (tall) system"
    );
    assert_eq!(b.len(), m, "rhs length must equal A's row count");

    // G = A^T A via AtA (lower triangle is all Cholesky needs).
    let mut g = gram_lower_opts(a, opts);

    // rhs = A^T b via the transposed-left kernel (b as an m x 1 block).
    let b_mat = Matrix::from_vec(b.to_vec(), m, 1);
    let mut rhs = Matrix::<T>::zeros(n, 1);
    gemm_tn(T::ONE, a, b_mat.as_ref(), &mut rhs.as_mut());

    cholesky_factor(&mut g)?;
    let rhs_vec: Vec<T> = (0..n).map(|i| rhs[(i, 0)]).collect();
    cholesky_solve(&g, &rhs_vec)
}

/// Residual 2-norm `||A x - b||_2` (an `f64` regardless of `T`, for
/// reporting).
pub fn residual_norm<T: Scalar>(a: MatRef<'_, T>, x: &[T], b: &[T]) -> f64 {
    let (m, n) = a.shape();
    assert_eq!(x.len(), n, "x length mismatch");
    assert_eq!(b.len(), m, "b length mismatch");
    let mut acc = 0.0f64;
    for (i, bv) in b.iter().enumerate() {
        let row = a.row(i);
        let mut r = -bv.to_f64();
        for (aij, xj) in row.iter().zip(x) {
            r += aij.to_f64() * xj.to_f64();
        }
        acc += r * r;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::gen;

    #[test]
    fn recovers_exact_solution_of_consistent_system() {
        let (m, n) = (60usize, 12usize);
        let a = gen::tall_well_conditioned::<f64>(1, m, n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut b = vec![0.0; m];
        for i in 0..m {
            for j in 0..n {
                b[i] += a[(i, j)] * x_true[j];
            }
        }
        let x = solve_normal_equations(a.as_ref(), &b, &AtaOptions::serial()).expect("full rank");
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
        assert!(residual_norm(a.as_ref(), &x, &b) < 1e-9);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        // The defining property of the LS solution: A^T (A x - b) = 0.
        let (m, n) = (40usize, 8usize);
        let a = gen::tall_well_conditioned::<f64>(2, m, n);
        let b: Vec<f64> = (0..m).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let x = solve_normal_equations(a.as_ref(), &b, &AtaOptions::serial()).expect("full rank");
        for j in 0..n {
            let mut dot = 0.0;
            for i in 0..m {
                let mut ri = -b[i];
                for k in 0..n {
                    ri += a[(i, k)] * x[k];
                }
                dot += a[(i, j)] * ri;
            }
            assert!(
                dot.abs() < 1e-8,
                "column {j} not orthogonal to residual: {dot}"
            );
        }
    }

    #[test]
    fn parallel_option_gives_same_answer() {
        let (m, n) = (80usize, 16usize);
        let a = gen::tall_well_conditioned::<f64>(3, m, n);
        let b: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let x1 = solve_normal_equations(a.as_ref(), &b, &AtaOptions::serial()).expect("rank");
        let x2 =
            solve_normal_equations(a.as_ref(), &b, &AtaOptions::with_threads(4)).expect("rank");
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_deficient_input_errors_cleanly() {
        // Zero column -> singular normal equations.
        let mut a = gen::tall_well_conditioned::<f64>(4, 20, 5);
        for i in 0..20 {
            a[(i, 3)] = 0.0;
        }
        let b = vec![1.0; 20];
        assert!(solve_normal_equations(a.as_ref(), &b, &AtaOptions::serial()).is_err());
    }

    #[test]
    #[should_panic(expected = "overdetermined")]
    fn underdetermined_rejected() {
        let a = Matrix::<f64>::zeros(3, 5);
        let _ = solve_normal_equations(a.as_ref(), &[0.0; 3], &AtaOptions::serial());
    }
}
