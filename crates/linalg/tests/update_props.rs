//! Property tests of the streaming factorization kernels: rank-k
//! updates/downdates must agree with full refactorization across
//! scalar types, chunk shapes and decay interleavings — and must cost
//! `O(n²k)` per chunk (op-counted), not `O(n³)`.

use ata_linalg::update::{llt_rank_update, LdltFactor, UpdateError};
use ata_linalg::{cholesky_factor, cholesky_solve};
use ata_mat::tracked::{measure, Tracked};
use ata_mat::{gen, MatRef, Matrix, Scalar};
use proptest::collection::vec;
use proptest::prelude::*;

/// A well-conditioned SPD base: `AᵀA + I` of a random tall matrix.
fn spd_base<T: Scalar>(seed: u64, n: usize) -> Matrix<T> {
    let a = gen::tall_well_conditioned::<T>(seed, 2 * n + 4, n);
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = T::ZERO;
            for r in 0..a.rows() {
                s += a[(r, i)] * a[(r, j)];
            }
            g[(i, j)] = s;
        }
        g[(i, i)] += T::ONE;
    }
    g
}

/// Reference accumulation: `g += alpha * chunkᵀ chunk` on the lower
/// triangle.
fn fold_ref<T: Scalar>(g: &mut Matrix<T>, alpha: T, chunk: MatRef<'_, T>) {
    let n = g.rows();
    for i in 0..n {
        for j in 0..=i {
            let mut s = T::ZERO;
            for r in 0..chunk.rows() {
                s += *chunk.at(r, i) * *chunk.at(r, j);
            }
            g[(i, j)] += alpha * s;
        }
    }
}

fn scale_lower<T: Scalar>(g: &mut Matrix<T>, beta: T) {
    let n = g.rows();
    for i in 0..n {
        for j in 0..=i {
            g[(i, j)] = beta * g[(i, j)];
        }
    }
}

/// Max |LDLᵀ − G| over the lower triangle.
fn reconstruction_err<T: Scalar>(f: &LdltFactor<T>, g: &Matrix<T>) -> f64 {
    let n = f.order();
    let l = f.unit_lower();
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..=i {
            let mut s = 0.0;
            for k in 0..=j {
                s += l[(i, k)].to_f64() * f.diag()[k].to_f64() * l[(j, k)].to_f64();
            }
            worst = worst.max((s - g[(i, j)].to_f64()).abs());
        }
    }
    worst
}

fn max_abs_lower<T: Scalar>(g: &Matrix<T>) -> f64 {
    let n = g.rows();
    let mut m = 0.0f64;
    for i in 0..n {
        for j in 0..=i {
            m = m.max(g[(i, j)].to_f64().abs());
        }
    }
    m
}

/// Drive a random op sequence through both the streaming factor and a
/// reference triangle, then compare reconstructions. Covers ragged /
/// 1-row / tall chunks, scaled pushes, retraction of previously pushed
/// chunks, and decay interleavings — for any `Scalar`.
fn stream_equivalence<T: Scalar>(
    seed: u64,
    n: usize,
    heights: &[usize],
    weights: &[f64],
    decay_every: usize,
    tol_scale: f64,
) {
    let base = spd_base::<T>(seed, n);
    let mut f = LdltFactor::from_lower(base.as_ref()).expect("base is SPD");
    let mut g = base.clone();
    let mut pushed: Vec<(T, Matrix<T>)> = Vec::new();
    let mut ops = 0usize;
    for (i, (&h, &wraw)) in heights.iter().zip(weights).enumerate() {
        let alpha = T::from_f64(0.25 + wraw.abs());
        let chunk = gen::standard::<T>(seed ^ (i as u64 + 1) << 8, h, n);
        f.rank_update(alpha, chunk.as_ref()).expect("SPD update");
        fold_ref(&mut g, alpha, chunk.as_ref());
        pushed.push((alpha, chunk));
        ops += h;
        if decay_every != 0 && i % decay_every == decay_every - 1 {
            let beta = T::from_f64(0.75);
            f.decay(beta);
            scale_lower(&mut g, beta);
            for (a, _) in &mut pushed {
                *a *= beta;
            }
        }
        // Retract every other pushed chunk once two are in flight —
        // with its decayed weight, so the mass stays exactly what the
        // reference triangle says.
        if i % 2 == 1 {
            let (a, c) = pushed.remove(0);
            f.rank_update(-a, c.as_ref()).expect("definite downdate");
            fold_ref(&mut g, -a, c.as_ref());
            ops += c.rows();
        }
    }
    let tol = T::epsilon() * ((n + ops) as f64) * max_abs_lower(&g).max(1.0) * tol_scale;
    let err = reconstruction_err(&f, &g);
    assert!(
        err <= tol,
        "stream/{} n={n} drifted from refactor truth: err={err:e} tol={tol:e}",
        T::NAME
    );
    // And the factor still matches a from-scratch refactorization of
    // the reference triangle, through a solve.
    let fr = LdltFactor::from_lower(g.as_ref()).expect("reference stays SPD");
    let rhs: Vec<T> = (0..n)
        .map(|i| T::from_f64(((i * 7 % 5) as f64) - 2.0))
        .collect();
    let x1 = f.solve(&rhs).expect("shape");
    let x2 = fr.solve(&rhs).expect("shape");
    for (u, v) in x1.iter().zip(&x2) {
        assert!(
            (u.to_f64() - v.to_f64()).abs() <= tol * 64.0,
            "solve mismatch for {}",
            T::NAME
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rank_update_matches_refactor_f64(
        seed in 0u64..1000,
        n in 2usize..24,
        heights in vec(1usize..40, 1..8),
        weights in vec(0.0f64..4.0, 8usize..9),
        decay_every in 0usize..4,
    ) {
        stream_equivalence::<f64>(seed, n, &heights, &weights, decay_every, 64.0);
    }

    #[test]
    fn rank_update_matches_refactor_f32(
        seed in 0u64..1000,
        n in 2usize..16,
        heights in vec(1usize..24, 1..6),
        weights in vec(0.0f64..4.0, 6usize..7),
        decay_every in 0usize..4,
    ) {
        stream_equivalence::<f32>(seed, n, &heights, &weights, decay_every, 256.0);
    }

    #[test]
    fn llt_update_matches_refactor(
        seed in 0u64..1000,
        n in 2usize..16,
        k in 1usize..12,
    ) {
        let base = spd_base::<f64>(seed, n);
        let mut l = base.clone();
        cholesky_factor(&mut l).expect("SPD");
        let chunk = gen::standard::<f64>(seed + 7, k, n);
        llt_rank_update(&mut l, 1.0, chunk.as_ref()).expect("update");
        llt_rank_update(&mut l, -1.0, chunk.as_ref()).expect("downdate back");
        let mut lr = base.clone();
        cholesky_factor(&mut lr).expect("SPD");
        let scale = max_abs_lower(&base).max(1.0);
        let tol = f64::EPSILON * ((n + 2 * k) as f64) * scale * 256.0;
        for i in 0..n {
            for j in 0..=i {
                prop_assert!(
                    (l[(i, j)] - lr[(i, j)]).abs() <= tol,
                    "({i},{j}): {} vs {}", l[(i, j)], lr[(i, j)]
                );
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
        let x1 = cholesky_solve(&l, &b).expect("shape");
        let x2 = cholesky_solve(&lr, &b).expect("shape");
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() <= 1e-6);
        }
    }

    #[test]
    fn over_retraction_errors_typed_and_never_nan(
        seed in 0u64..1000,
        n in 2usize..16,
        scale in 10.0f64..1e6,
    ) {
        let base = spd_base::<f64>(seed, n);
        let mut f = LdltFactor::from_lower(base.as_ref()).expect("SPD");
        // A retraction of mass far beyond anything accumulated.
        let mut big = Matrix::<f64>::zeros(1, n);
        for j in 0..n {
            big[(0, j)] = scale * (1.0 + j as f64);
        }
        let err = f.rank_update(-1.0, big.as_ref());
        prop_assert!(matches!(err, Err(UpdateError::Indefinite { .. })), "{err:?}");
        for v in f.diag() {
            prop_assert!(v.is_finite(), "pivot went non-finite");
        }
        let l = f.unit_lower();
        for i in 0..n {
            for j in 0..n {
                prop_assert!(l[(i, j)].is_finite(), "NaN leaked into the factor");
            }
        }
        // The LLᵀ sweep keeps the same contract.
        let mut lc = base.clone();
        cholesky_factor(&mut lc).expect("SPD");
        let res = llt_rank_update(&mut lc, -1.0, big.as_ref());
        prop_assert!(matches!(res, Err(UpdateError::Indefinite { .. })));
        for i in 0..n {
            for j in 0..=i {
                prop_assert!(lc[(i, j)].is_finite());
            }
        }
    }

    #[test]
    fn update_cost_is_quadratic_per_chunk_row(
        seed in 0u64..100,
        np in 0usize..3,
        k in 1usize..6,
    ) {
        // O(n²k) pinned by the op-counting scalar: the sweep must stay
        // under 2kn² + 8kn counted flops (the method-C1 recurrence is
        // 4 flops per updated entry plus 7 per pivot), at every n — a
        // refactor is n³/3 and loses as soon as 6k < n.
        let n = [8usize, 16, 32][np];
        let base = spd_base::<Tracked>(seed, n);
        let mut f = LdltFactor::from_lower(base.as_ref()).expect("SPD");
        let chunk = gen::standard::<Tracked>(seed + 3, k, n);
        let (res, ops) = measure(|| f.rank_update(Tracked::from_f64(1.0), chunk.as_ref()));
        res.expect("SPD update");
        let ceiling = (2 * k * n * n + 8 * k * n) as u64;
        prop_assert!(
            ops.total() <= ceiling,
            "rank-{k} sweep at n={n} cost {} flops, ceiling {ceiling}",
            ops.total()
        );
        // Refactorization is cubic — measure it and require the sweep
        // to win whenever the policy says it should (6k <= n).
        let (res, refac_ops) = measure(|| f.refactor_from_lower(base.as_ref()));
        res.expect("SPD");
        if 6 * k <= n {
            prop_assert!(
                ops.total() < refac_ops.total(),
                "update ({}) must beat refactor ({}) at n={n}, k={k}",
                ops.total(),
                refac_ops.total()
            );
        }
    }
}

/// Doubling `n` at fixed `k` must grow the sweep cost ~4x (quadratic),
/// while refactor cost grows ~8x (cubic) — the acceptance criterion's
/// O(n²k) vs O(n³) separation, measured rather than assumed.
#[test]
fn update_scaling_is_quadratic_not_cubic() {
    let mut sweep = Vec::new();
    let mut refac = Vec::new();
    for n in [16usize, 32, 64] {
        let base = spd_base::<Tracked>(42, n);
        let mut f = LdltFactor::from_lower(base.as_ref()).expect("SPD");
        let chunk = gen::standard::<Tracked>(7, 2, n);
        let (res, ops) = measure(|| f.rank_update(Tracked::from_f64(1.0), chunk.as_ref()));
        res.expect("SPD");
        sweep.push(ops.total());
        let (res, ops) = measure(|| f.refactor_from_lower(base.as_ref()));
        res.expect("SPD");
        refac.push(ops.total());
    }
    for w in sweep.windows(2) {
        let ratio = w[1] as f64 / w[0] as f64;
        assert!(
            ratio < 5.0,
            "sweep cost must scale quadratically, grew {ratio}x on doubling n"
        );
    }
    for (s, r) in sweep.iter().zip(&refac) {
        assert!(s < r, "rank-2 sweep must undercut the cubic refactor");
    }
    let refac_ratio = refac[2] as f64 / refac[1] as f64;
    assert!(
        refac_ratio > 6.0,
        "refactor must scale cubically (got {refac_ratio}x per doubling)"
    );
}
