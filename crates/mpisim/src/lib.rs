//! A message-passing simulator — the workspace's substitute for MPI and
//! for the paper's 12-node TeraStat cluster (2 x 8-core Xeon E5-2630v3
//! per node, §5.1), which is not available to this reproduction.
//!
//! Ranks run as OS threads and exchange typed messages through
//! selective-receive mailboxes (matching on `(source, tag)`, like
//! `MPI_Recv`). Every rank carries a **simulated clock** advanced by a
//! LogGP-style [`CostModel`]:
//!
//! * compute: `t += flops * flop_time` (callers report the flops of each
//!   kernel they run — the numerics still execute for real, so results
//!   are verified, but *timing* comes from the model);
//! * messages: the sender is busy for the latency `alpha`, and the
//!   payload arrives at `send_clock + alpha + words * beta`; the receiver
//!   clock becomes `max(own, arrival)`.
//!
//! Because matching is deterministic, the final clocks are independent
//! of the real thread interleaving: the simulation is reproducible even
//! on a single physical core, which is exactly why this design was
//! chosen (see DESIGN.md §3.7). The *critical path* — the maximum clock
//! over ranks — is what the Figure 6 harness reports as elapsed time,
//! mirroring the paper's definition of latency/bandwidth costs "computed
//! along the critical path" (§4.3.2, citing Yang & Miller).
//!
//! Traffic counters (messages and words sent per rank) are exact, and
//! the `ata-dist` tests audit them against Proposition 4.2.

//! ## Fault injection
//!
//! A [`Universe`] can carry a deterministic, seeded [`FaultPlan`]:
//! dropped messages, extra-latency deliveries, and rank crashes, all
//! keyed on per-edge/per-op counters so the same plan replays the same
//! faults on every run. The checked communication API
//! ([`Comm::send_checked`] / [`Comm::recv_checked`]) surfaces them as
//! typed [`CommError`]s — a dropped message becomes a
//! `Timeout` after the universe's `recv_deadline` simulated seconds,
//! and a crashed rank poisons its peers' mailboxes so they fail fast.

#![forbid(unsafe_code)]

pub mod collective;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod universe;

pub use comm::{Comm, Message};
pub use cost::CostModel;
pub use fault::{CommError, FaultPlan, FaultSpec};
pub use universe::{run, RankMetrics, RunReport, Universe};
