//! Spawning and harvesting a universe of ranks.

use crate::comm::{Comm, Envelope};
use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crossbeam::channel::unbounded;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Raises the universe's abort flag if its thread unwinds, so blocked
/// peers fail fast instead of waiting out the deadlock guard.
struct AbortOnPanic(Arc<AtomicBool>);

impl Drop for AbortOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// Per-rank accounting returned by [`run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankMetrics {
    /// Rank id.
    pub rank: usize,
    /// Final simulated clock (seconds).
    pub sim_time: f64,
    /// Simulated compute component of `sim_time`.
    pub compute_time: f64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Payload words sent.
    pub words_sent: u64,
    /// Messages received (consumed by a matching receive).
    pub msgs_recv: u64,
    /// Payload words received — at rank 0 this is the root-bandwidth
    /// term of Proposition 4.2's retrieval phase.
    pub words_recv: u64,
    /// Real wall-clock seconds the rank's thread ran.
    pub wall_time: f64,
}

/// Results and metrics of a universe execution.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank metrics, indexed by rank.
    pub metrics: Vec<RankMetrics>,
}

impl<R> RunReport<R> {
    /// The simulated elapsed time of the whole run: the maximum clock
    /// over ranks (the critical path, §4.3.2).
    pub fn critical_path(&self) -> f64 {
        self.metrics.iter().map(|m| m.sim_time).fold(0.0, f64::max)
    }

    /// Total words sent by all ranks (the bandwidth volume of Prop 4.2).
    pub fn total_words(&self) -> u64 {
        self.metrics.iter().map(|m| m.words_sent).sum()
    }

    /// Total messages sent by all ranks (the latency count of Prop 4.2).
    pub fn total_msgs(&self) -> u64 {
        self.metrics.iter().map(|m| m.msgs_sent).sum()
    }

    /// Maximum real wall-clock time over ranks.
    pub fn max_wall_time(&self) -> f64 {
        self.metrics.iter().map(|m| m.wall_time).fold(0.0, f64::max)
    }
}

/// A configured universe: rank count, cost model, and (optionally) an
/// injected [`FaultPlan`] plus the simulated-clock patience of checked
/// receives.
///
/// [`run`] is the faultless shorthand; build a `Universe` explicitly to
/// install faults:
///
/// ```
/// use ata_mpisim::{CostModel, FaultPlan, Universe};
///
/// let plan = FaultPlan::new().drop_message(0, 1, 0);
/// let report = Universe::new(2, CostModel::zero())
///     .faults(plan)
///     .recv_deadline(1.0)
///     .run(|comm| {
///         if comm.rank() == 0 {
///             comm.send_checked(1, 7, vec![1.0f64]).map(|_| vec![])
///         } else {
///             comm.recv_checked(0, 7) // Err(Timeout): message dropped
///         }
///     });
/// assert!(report.results[1].is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Universe {
    size: usize,
    model: CostModel,
    faults: Arc<FaultPlan>,
    recv_deadline: Option<f64>,
}

impl Universe {
    /// A faultless universe of `size` ranks under `model`.
    ///
    /// # Panics
    /// If `size == 0`.
    pub fn new(size: usize, model: CostModel) -> Self {
        assert!(size > 0, "universe needs at least one rank");
        Self {
            size,
            model,
            faults: Arc::new(FaultPlan::new()),
            recv_deadline: None,
        }
    }

    /// Install a fault schedule (replacing any previous one).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Arc::new(plan);
        self
    }

    /// How many simulated seconds a `recv_checked` waits past its
    /// current clock before giving up with `CommError::Timeout`.
    ///
    /// # Panics
    /// If `secs` is not positive.
    pub fn recv_deadline(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "recv_deadline must be positive");
        self.recv_deadline = Some(secs);
        self
    }

    /// Run every rank through `f` and collect results and metrics.
    /// Blocks until every rank finishes. See [`run`] for the contract;
    /// additionally, under a fault plan a rank's injected crash is *not*
    /// a panic when observed through the checked ops — the rank simply
    /// returns whatever `f` maps the error to.
    ///
    /// # Panics
    /// If any rank panics (including faults surfaced through the
    /// infallible communication API).
    pub fn run<T, R, F>(&self, f: F) -> RunReport<R>
    where
        T: Send + 'static,
        R: Send,
        F: Fn(&mut Comm<T>) -> R + Sync,
    {
        let size = self.size;
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (s, r) = unbounded::<Envelope<T>>();
            senders.push(s);
            receivers.push(r);
        }

        let mut outcome: Vec<Option<(R, RankMetrics)>> = (0..size).map(|_| None).collect();
        let f_ref = &f;
        let abort = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, (receiver, slot)) in
                receivers.into_iter().zip(outcome.iter_mut()).enumerate()
            {
                let senders = senders.clone();
                let abort = abort.clone();
                let faults = self.faults.clone();
                let recv_deadline = self.recv_deadline;
                let model = self.model;
                // The simulated cluster's ranks ARE the parallelism under
                // test here — they model MPI processes, not pool workers,
                // and each rank's op counts are its own measurement.
                // ata-lint: allow(no-raw-spawn): simulated MPI ranks are
                // scoped threads by design.
                let handle = scope.spawn(move || {
                    let _guard = AbortOnPanic(abort.clone());
                    let start = Instant::now();
                    let mut comm = Comm::new(
                        rank,
                        size,
                        model,
                        senders,
                        receiver,
                        abort,
                        faults,
                        recv_deadline,
                    );
                    let result = f_ref(&mut comm);
                    let mut metrics = comm.metrics();
                    metrics.wall_time = start.elapsed().as_secs_f64();
                    *slot = Some((result, metrics));
                });
                handles.push((rank, handle));
            }
            // Join everything first, then report the *original* failure:
            // ranks that merely echoed the abort flag would otherwise mask
            // the culprit (joins happen in rank order).
            let mut failures: Vec<(usize, String)> = Vec::new();
            for (rank, handle) in handles {
                if let Err(payload) = handle.join() {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic>".into());
                    failures.push((rank, msg));
                }
            }
            if !failures.is_empty() {
                let (rank, msg) = failures
                    .iter()
                    .find(|(_, m)| !m.contains("another rank panicked"))
                    .unwrap_or(&failures[0]);
                panic!("rank {rank} panicked: {msg}");
            }
        });

        let mut results = Vec::with_capacity(size);
        let mut metrics = Vec::with_capacity(size);
        for slot in outcome {
            let (r, m) = slot.expect("every rank either finished or panicked");
            results.push(r);
            metrics.push(m);
        }
        RunReport { results, metrics }
    }
}

/// Run `size` ranks, each executing `f(&mut comm)`, and collect results
/// and metrics. Blocks until every rank finishes. Shorthand for a
/// faultless [`Universe`].
///
/// The closure runs on `size` OS threads; payload type `T` and result
/// type `R` must be `Send`. If any rank panics, the panic is propagated
/// with the rank id attached (failure injection relies on this).
///
/// # Panics
/// If `size == 0`, or if any rank panics.
pub fn run<T, R, F>(size: usize, model: CostModel, f: F) -> RunReport<R>
where
    T: Send + 'static,
    R: Send,
    F: Fn(&mut Comm<T>) -> R + Sync,
{
    Universe::new(size, model).run(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_indexed_by_rank() {
        let report = run::<f64, _, _>(4, CostModel::zero(), |comm| comm.rank() * 10);
        assert_eq!(report.results, vec![0, 10, 20, 30]);
        assert_eq!(report.metrics.len(), 4);
        for (i, m) in report.metrics.iter().enumerate() {
            assert_eq!(m.rank, i);
        }
    }

    #[test]
    fn critical_path_is_max_clock() {
        let model = CostModel::new(0.0, 0.0, 1.0);
        let report = run::<f64, _, _>(3, model, |comm| {
            comm.add_compute_flops((comm.rank() + 1) as f64);
        });
        assert!((report.critical_path() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn wall_time_is_recorded() {
        let report = run::<f64, _, _>(2, CostModel::zero(), |_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        assert!(report.max_wall_time() >= 0.004);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn rank_panic_is_propagated_with_id() {
        let _ = run::<f64, _, _>(3, CostModel::zero(), |comm| {
            if comm.rank() == 1 {
                panic!("injected failure");
            }
        });
    }

    #[test]
    fn peer_failure_unblocks_receivers_quickly() {
        // Rank 0 dies; ranks 1..3 are blocked in recv. The abort flag
        // must release them in well under the 120 s deadlock guard, and
        // the reported culprit must be the original panicker.
        let start = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run::<f64, _, _>(4, CostModel::zero(), |comm| {
                if comm.rank() == 0 {
                    panic!("injected root failure");
                }
                let _ = comm.recv(0, 1); // never sent
            })
        }));
        let elapsed = start.elapsed().as_secs_f64();
        let err = result.expect_err("universe must propagate the panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("rank 0 panicked") && msg.contains("injected root failure"),
            "culprit not surfaced: {msg}"
        );
        assert!(elapsed < 10.0, "abort took {elapsed}s — flag not honored");
    }

    #[test]
    fn collective_participants_unblock_on_peer_failure() {
        let start = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run::<f64, _, _>(4, CostModel::zero(), |comm| {
                if comm.rank() == 3 {
                    panic!("leaf rank died before the barrier");
                }
                comm.barrier();
            })
        }));
        assert!(result.is_err());
        assert!(start.elapsed().as_secs_f64() < 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_universe_rejected() {
        let _ = run::<f64, _, _>(0, CostModel::zero(), |_| ());
    }
}
