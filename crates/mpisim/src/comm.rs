//! The per-rank communicator: point-to-point messaging with selective
//! receive, plus the simulated clock.

use crate::cost::CostModel;
use crate::fault::{CommError, FaultPlan};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reserved tag bit for collectives; user tags must stay below this.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 62;

/// A typed message between ranks.
#[derive(Debug, Clone)]
pub struct Message<T> {
    /// Sending rank.
    pub src: usize,
    /// User (or collective) tag.
    pub tag: u64,
    /// Payload elements.
    pub payload: Vec<T>,
    /// Simulated arrival time at the receiver.
    pub arrival: f64,
}

/// What actually travels on the transport: a payload, a tombstone for a
/// message the fault plan dropped (so deadline receives can time out
/// deterministically instead of waiting out the wall-clock guard), or a
/// crash marker poisoning the peers of a dead rank.
#[derive(Debug)]
pub(crate) enum Envelope<T> {
    Msg(Message<T>),
    Dropped { src: usize, tag: u64 },
    Crashed { src: usize },
}

/// Per-rank communicator handle (the `MPI_Comm` + rank state analogue).
///
/// Owned exclusively by the rank's thread; all methods take `&mut self`.
pub struct Comm<T> {
    rank: usize,
    size: usize,
    model: CostModel,
    senders: Vec<Sender<Envelope<T>>>,
    receiver: Receiver<Envelope<T>>,
    /// Out-of-order buffer for selective receive.
    mailbox: VecDeque<Message<T>>,
    /// Simulated local time (seconds).
    clock: f64,
    /// Simulated seconds spent in compute (subset of `clock`).
    compute: f64,
    msgs_sent: u64,
    words_sent: u64,
    msgs_recv: u64,
    words_recv: u64,
    /// Receive timeout guarding against deadlocks in tests.
    timeout: Duration,
    /// Set by the universe when any rank panics: blocked receivers bail
    /// out promptly instead of waiting for the deadlock guard.
    abort: Arc<AtomicBool>,
    /// Injected fault schedule (empty by default).
    faults: Arc<FaultPlan>,
    /// Simulated-clock patience of checked receives: how long a
    /// `recv_checked` waits past its current clock before giving up
    /// with [`CommError::Timeout`]. `None` waits forever (modulo the
    /// wall-clock deadlock guard).
    recv_deadline: Option<f64>,
    /// Messages sent so far per destination rank — the `nth` counter
    /// the fault plan's drop/delay schedule keys on.
    edge_sends: Vec<u64>,
    /// Communication ops performed (sends + receives) — the crash
    /// schedule keys on this.
    ops: u64,
    /// Set once this rank's scheduled crash fires (records the op).
    crashed: Option<u64>,
    /// Tombstones received for dropped messages, as `(src, tag)`.
    tombstones: VecDeque<(usize, u64)>,
    /// Peers known to have crashed.
    dead_peers: Vec<bool>,
}

impl<T: Send + 'static> Comm<T> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        model: CostModel,
        senders: Vec<Sender<Envelope<T>>>,
        receiver: Receiver<Envelope<T>>,
        abort: Arc<AtomicBool>,
        faults: Arc<FaultPlan>,
        recv_deadline: Option<f64>,
    ) -> Self {
        Self {
            rank,
            size,
            model,
            senders,
            receiver,
            mailbox: VecDeque::new(),
            clock: 0.0,
            compute: 0.0,
            msgs_sent: 0,
            words_sent: 0,
            msgs_recv: 0,
            words_recv: 0,
            timeout: Duration::from_secs(120),
            abort,
            faults,
            recv_deadline,
            edge_sends: vec![0; size],
            ops: 0,
            crashed: None,
            tombstones: VecDeque::new(),
            dead_peers: vec![false; size],
        }
    }

    /// Blocking channel read with abort/deadlock guards. Polls in short
    /// slices so a peer's failure surfaces in milliseconds, not at the
    /// deadlock-guard horizon.
    fn blocking_next(&mut self, what: &dyn Fn() -> String) -> Envelope<T> {
        let deadline = Instant::now() + self.timeout;
        loop {
            match self.receiver.recv_timeout(Duration::from_millis(20)) {
                Ok(env) => return env,
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        !self.abort.load(Ordering::Relaxed),
                        "rank {} aborting {}: another rank panicked",
                        self.rank,
                        what()
                    );
                    assert!(
                        Instant::now() < deadline,
                        "rank {} deadlocked {}",
                        self.rank,
                        what()
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while this Comm is alive (it holds a
                    // sender to itself), but bail out defensively.
                    panic!("rank {}: transport disconnected {}", self.rank, what());
                }
            }
        }
    }

    /// File one envelope into the matching local buffer.
    fn file(&mut self, env: Envelope<T>) {
        match env {
            Envelope::Msg(m) => self.mailbox.push_back(m),
            Envelope::Dropped { src, tag } => self.tombstones.push_back((src, tag)),
            Envelope::Crashed { src } => self.dead_peers[src] = true,
        }
    }

    /// Block for one envelope and file it.
    fn pump(&mut self, what: &dyn Fn() -> String) {
        let env = self.blocking_next(what);
        self.file(env);
    }

    /// Account one communication op against the crash schedule. Once
    /// this rank's crash op is reached, the rank broadcasts a poison
    /// marker (control traffic — not charged to the clock or counters)
    /// and every op, this one included, fails with
    /// [`CommError::Crashed`].
    fn op_guard(&mut self) -> Result<(), CommError> {
        let op = self.ops;
        self.ops += 1;
        if let Some(k) = self.crashed {
            return Err(CommError::Crashed {
                rank: self.rank,
                op: k,
            });
        }
        if self.faults.crash_op(self.rank) == Some(op) {
            self.crashed = Some(op);
            for to in 0..self.size {
                if to != self.rank {
                    let _ = self.senders[to].send(Envelope::Crashed { src: self.rank });
                }
            }
            return Err(CommError::Crashed {
                rank: self.rank,
                op,
            });
        }
        Ok(())
    }

    /// [`Self::op_guard`] for the infallible API: an injected crash has
    /// no error channel there, so it surfaces as a panic.
    fn op_guard_infallible(&mut self, what: &str) {
        if let Err(e) = self.op_guard() {
            panic!(
                "rank {}: {e} while {what} (injected fault on the infallible API; \
                 use the checked ops to observe faults as errors)",
                self.rank
            );
        }
    }

    /// This rank's id, `0 .. size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current simulated time (seconds).
    #[inline]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Simulated compute seconds so far.
    #[inline]
    pub fn compute_time(&self) -> f64 {
        self.compute
    }

    /// Messages sent so far.
    #[inline]
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    /// Payload words sent so far.
    #[inline]
    pub fn words_sent(&self) -> u64 {
        self.words_sent
    }

    /// Messages received (consumed by a matching receive) so far.
    #[inline]
    pub fn msgs_recv(&self) -> u64 {
        self.msgs_recv
    }

    /// Payload words received so far — the quantity Proposition 4.2
    /// bounds at the root during retrieval.
    #[inline]
    pub fn words_recv(&self) -> u64 {
        self.words_recv
    }

    /// Cost model in force.
    #[inline]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The simulated-clock deadline of checked receives, if any.
    #[inline]
    pub fn recv_deadline(&self) -> Option<f64> {
        self.recv_deadline
    }

    /// True once this rank's scheduled crash has fired.
    #[inline]
    pub fn is_crashed(&self) -> bool {
        self.crashed.is_some()
    }

    /// Advance the simulated clock by `flops` of local computation.
    ///
    /// The caller still performs the computation for real; this only
    /// accounts for its *modeled* duration.
    pub fn add_compute_flops(&mut self, flops: f64) {
        let t = self.model.compute_time(flops);
        self.clock += t;
        self.compute += t;
    }

    /// Advance the simulated clock by an explicit duration (e.g. a
    /// measured kernel time instead of a modeled one).
    pub fn add_compute_seconds(&mut self, secs: f64) {
        assert!(secs >= 0.0, "negative compute time");
        self.clock += secs;
        self.compute += secs;
    }

    /// Send `payload` to rank `to` with `tag` (asynchronous, like
    /// `MPI_Isend` + eager buffering).
    ///
    /// # Panics
    /// If `to` is out of range, the tag collides with the reserved
    /// collective space, or an injected crash fires on this op (use
    /// [`Comm::send_checked`] to observe faults as errors).
    pub fn send(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        self.send_impl(to, tag, payload);
    }

    /// Fault-aware send: like [`Comm::send`], but an injected crash on
    /// this rank surfaces as `Err(CommError::Crashed)` instead of a
    /// panic. Drops and delays apply transparently on the wire either
    /// way (the *receiver* observes them).
    ///
    /// # Panics
    /// If `to` is out of range or the tag collides with the reserved
    /// collective space.
    pub fn send_checked(&mut self, to: usize, tag: u64, payload: Vec<T>) -> Result<(), CommError> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        self.send_impl_checked(to, tag, payload)
    }

    pub(crate) fn send_impl(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        self.op_guard_infallible("sending");
        self.transmit(to, tag, payload);
    }

    pub(crate) fn send_impl_checked(
        &mut self,
        to: usize,
        tag: u64,
        payload: Vec<T>,
    ) -> Result<(), CommError> {
        self.op_guard()?;
        self.transmit(to, tag, payload);
        Ok(())
    }

    /// The common send body: charge the LogGP clock and traffic
    /// counters (the send completes locally even if the network then
    /// drops the message), apply the fault plan's drop/delay schedule,
    /// and hand the envelope to the transport.
    fn transmit(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        assert!(
            to < self.size,
            "send to rank {to} out of range (size {})",
            self.size
        );
        let words = payload.len();
        let nth = self.edge_sends[to];
        self.edge_sends[to] += 1;
        // Sender occupied for the latency; payload lands after transfer.
        let mut arrival = self.clock + self.model.transfer_time(words);
        self.clock += self.model.alpha;
        self.msgs_sent += 1;
        self.words_sent += words as u64;
        let env = if self.faults.is_dropped(self.rank, to, nth) {
            Envelope::Dropped {
                src: self.rank,
                tag,
            }
        } else {
            if let Some(extra) = self.faults.delay(self.rank, to, nth) {
                arrival += extra;
            }
            Envelope::Msg(Message {
                src: self.rank,
                tag,
                payload,
                arrival,
            })
        };
        if self.senders[to].send(env).is_err() {
            // The peer's thread already terminated and its channel is
            // gone. On a plain universe that is an SPMD protocol bug —
            // fail fast with a clear culprit. Under fault machinery
            // (a fault plan or a recv deadline) it is the expected
            // wake of a rank that bailed out early on a typed error:
            // the message is lost, exactly as if the network ate it.
            assert!(
                self.recv_deadline.is_some() || !self.faults.is_empty(),
                "rank {to} hung up (send from {})",
                self.rank
            );
        }
    }

    /// Declare this rank failed to every peer: each receives a crash
    /// marker (as if this rank crashed), so checked receives matching
    /// on this rank fail fast with [`CommError::PeerCrashed`] instead
    /// of waiting out a deadline on messages that will never come.
    ///
    /// Call this before bailing out of an SPMD computation on error —
    /// errors then cascade through the rank graph in bounded simulated
    /// time. Local state is untouched: control traffic, no clock or
    /// counter charges.
    pub fn abandon(&mut self) {
        for to in 0..self.size {
            if to != self.rank {
                let _ = self.senders[to].send(Envelope::Crashed { src: self.rank });
            }
        }
    }

    /// Blocking selective receive matching `(from, tag)`.
    ///
    /// Advances the simulated clock to the message's arrival time if the
    /// receiver got there early.
    ///
    /// # Panics
    /// If no matching message arrives within the deadlock-guard timeout,
    /// or if an injected fault (drop, peer crash, own crash) surfaces on
    /// this receive — use [`Comm::recv_checked`] to observe faults as
    /// errors.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        self.recv_impl(from, tag)
    }

    /// Fault-aware selective receive. Where [`Comm::recv`] panics on an
    /// injected fault, this returns the typed [`CommError`]:
    ///
    /// * `Timeout` — the matching message was dropped (its tombstone is
    ///   consumed), or is modeled to arrive later than the universe's
    ///   `recv_deadline` past this rank's current clock (the message
    ///   stays in flight for a later, retried receive). Either way the
    ///   clock advances by the full deadline — waiting costs time.
    /// * `PeerCrashed` — `from` crashed before satisfying the receive.
    /// * `Crashed` — this rank itself crashed on an earlier (or this)
    ///   op.
    ///
    /// # Panics
    /// On a reserved tag, or if no deciding event (message, tombstone,
    /// crash marker) arrives within the wall-clock deadlock guard.
    pub fn recv_checked(&mut self, from: usize, tag: u64) -> Result<Vec<T>, CommError> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        self.recv_impl_checked(from, tag)
    }

    /// Consume a matched message: advance the clock to its arrival and
    /// account it on the receive counters.
    fn consume(&mut self, msg: Message<T>) -> Vec<T> {
        self.clock = self.clock.max(msg.arrival);
        self.msgs_recv += 1;
        self.words_recv += msg.payload.len() as u64;
        msg.payload
    }

    pub(crate) fn recv_impl(&mut self, from: usize, tag: u64) -> Vec<T> {
        self.op_guard_infallible("receiving");
        loop {
            // Check the out-of-order buffer first.
            if let Some(pos) = self
                .mailbox
                .iter()
                .position(|m| m.src == from && m.tag == tag)
            {
                let msg = self.mailbox.remove(pos).expect("position valid");
                return self.consume(msg);
            }
            if self.tombstones.iter().any(|&(s, t)| s == from && t == tag) {
                panic!(
                    "rank {}: message (src={from}, tag={tag}) was dropped by the \
                     fault plan (use recv_checked under a recv_deadline)",
                    self.rank
                );
            }
            if self.dead_peers[from] {
                panic!(
                    "rank {}: peer rank {from} crashed (use recv_checked to \
                     observe the failure as an error)",
                    self.rank
                );
            }
            self.pump(&|| format!("waiting for (src={from}, tag={tag})"));
        }
    }

    pub(crate) fn recv_impl_checked(&mut self, from: usize, tag: u64) -> Result<Vec<T>, CommError> {
        self.op_guard()?;
        loop {
            if let Some(pos) = self
                .mailbox
                .iter()
                .position(|m| m.src == from && m.tag == tag)
            {
                if let Some(d) = self.recv_deadline {
                    let limit = self.clock + d;
                    if self.mailbox[pos].arrival > limit {
                        // Modeled to arrive later than this receive was
                        // willing to wait: give up at the deadline, but
                        // leave the message in flight for a retry.
                        self.clock = limit;
                        return Err(CommError::Timeout { from, tag });
                    }
                }
                let msg = self.mailbox.remove(pos).expect("position valid");
                return Ok(self.consume(msg));
            }
            if let Some(pos) = self
                .tombstones
                .iter()
                .position(|&(s, t)| s == from && t == tag)
            {
                self.tombstones.remove(pos);
                // The receiver waits out its full patience before
                // giving up on the dropped message.
                self.clock += self.recv_deadline.unwrap_or(0.0);
                return Err(CommError::Timeout { from, tag });
            }
            if self.dead_peers[from] {
                return Err(CommError::PeerCrashed { from });
            }
            self.pump(&|| format!("waiting (checked) for (src={from}, tag={tag})"));
        }
    }

    /// Drain the channel into the local buffers without blocking.
    fn drain_channel(&mut self) {
        while let Ok(env) = self.receiver.try_recv() {
            self.file(env);
        }
    }

    /// Non-blocking selective receive (`MPI_Iprobe` + matched receive):
    /// returns the payload if a matching message has *already* been
    /// delivered, `None` otherwise. Never advances past messages that do
    /// not match — they stay buffered for later `recv`s.
    ///
    /// Note the simulated-clock semantics: a message can be present in
    /// the transport (and thus returned here) while its modeled
    /// `arrival` time is in the future; like `recv`, the receiver's
    /// clock is advanced to the arrival time. This mirrors MPI progress
    /// semantics, where probing cannot observe a message earlier than
    /// the network could deliver it.
    ///
    /// # Panics
    /// If the tag collides with the reserved collective space.
    pub fn try_recv(&mut self, from: usize, tag: u64) -> Option<Vec<T>> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        self.drain_channel();
        let pos = self
            .mailbox
            .iter()
            .position(|m| m.src == from && m.tag == tag)?;
        let msg = self.mailbox.remove(pos).expect("position valid");
        Some(self.consume(msg))
    }

    /// True if a matching message is already deliverable (`MPI_Iprobe`).
    /// Does not consume the message or advance the clock.
    pub fn probe(&mut self, from: usize, tag: u64) -> bool {
        self.drain_channel();
        self.mailbox.iter().any(|m| m.src == from && m.tag == tag)
    }

    /// Blocking receive from *any* source with the given tag
    /// (`MPI_ANY_SOURCE`); returns `(source, payload)`. Among buffered
    /// candidates the earliest-buffered wins (FIFO fairness).
    ///
    /// # Panics
    /// If no matching message arrives within the deadlock-guard timeout,
    /// on a reserved tag, or if an injected fault surfaces on this
    /// receive.
    pub fn recv_any(&mut self, tag: u64) -> (usize, Vec<T>) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        self.op_guard_infallible("receiving (any source)");
        loop {
            if let Some(pos) = self.mailbox.iter().position(|m| m.tag == tag) {
                let msg = self.mailbox.remove(pos).expect("position valid");
                let src = msg.src;
                return (src, self.consume(msg));
            }
            if let Some(&(s, _)) = self.tombstones.iter().find(|&&(_, t)| t == tag) {
                panic!(
                    "rank {}: message (src={s}, tag={tag}) was dropped by the \
                     fault plan (recv_any has no checked variant)",
                    self.rank
                );
            }
            self.pump(&|| format!("waiting for (any src, tag={tag})"));
        }
    }

    pub(crate) fn metrics(&self) -> crate::universe::RankMetrics {
        crate::universe::RankMetrics {
            rank: self.rank,
            sim_time: self.clock,
            compute_time: self.compute,
            msgs_sent: self.msgs_sent,
            words_sent: self.words_sent,
            msgs_recv: self.msgs_recv,
            words_recv: self.words_recv,
            wall_time: 0.0, // filled by the universe
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{run, CommError, CostModel, FaultPlan, Universe};

    #[test]
    fn ping_pong_transfers_payload() {
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let v = comm.recv(0, 7);
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(report.results[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn selective_receive_reorders() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, vec![20.0f64]);
                comm.send(1, 1, vec![10.0f64]);
                vec![]
            } else {
                let first = comm.recv(0, 1);
                let second = comm.recv(0, 2);
                vec![first[0], second[0]]
            }
        });
        assert_eq!(report.results[1], vec![10.0, 20.0]);
    }

    #[test]
    fn clock_advances_with_messages_and_compute() {
        let model = CostModel::new(1.0, 0.5, 0.0); // alpha=1s, beta=0.5s/word
        let report = run::<f64, _, _>(2, model, |comm| {
            if comm.rank() == 0 {
                comm.add_compute_seconds(3.0);
                comm.send(1, 1, vec![0.0; 4]); // arrival = 3 + 1 + 2 = 6
                comm.clock()
            } else {
                let _ = comm.recv(0, 1);
                comm.clock()
            }
        });
        // Sender: 3 (compute) + 1 (latency) = 4.
        assert!((report.results[0] - 4.0).abs() < 1e-12);
        // Receiver jumped to the arrival time 6.
        assert!((report.results[1] - 6.0).abs() < 1e-12);
        assert!((report.critical_path() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_counters_are_exact() {
        let report = run(3, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![0.0f64; 10]);
                comm.send(2, 1, vec![0.0f64; 20]);
            } else {
                let _ = comm.recv(0, 1);
            }
        });
        assert_eq!(report.metrics[0].msgs_sent, 2);
        assert_eq!(report.metrics[0].words_sent, 30);
        assert_eq!(report.metrics[1].msgs_sent, 0);
        // Receive counters mirror the sends on the consuming side.
        assert_eq!(report.metrics[0].msgs_recv, 0);
        assert_eq!(report.metrics[1].msgs_recv, 1);
        assert_eq!(report.metrics[1].words_recv, 10);
        assert_eq!(report.metrics[2].words_recv, 20);
    }

    #[test]
    fn compute_flops_uses_model() {
        let model = CostModel::new(0.0, 0.0, 1e-9);
        let report = run::<f64, _, _>(1, model, |comm| {
            comm.add_compute_flops(2e9);
            comm.clock()
        });
        assert!((report.results[0] - 2.0).abs() < 1e-9);
        assert!((report.metrics[0].compute_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn send_to_self_works() {
        let report = run(1, CostModel::zero(), |comm| {
            comm.send(0, 5, vec![42.0f64]);
            comm.recv(0, 5)
        });
        assert_eq!(report.results[0], vec![42.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        let _ = run(1, CostModel::zero(), |comm| {
            comm.send(3, 1, vec![0.0f64]);
        });
    }

    #[test]
    fn try_recv_returns_none_until_delivery() {
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                // Nothing sent yet: must be None immediately.
                let early = comm.try_recv(1, 5).is_none();
                // Handshake so rank 1's message is definitely in flight.
                let _ = comm.recv(1, 6);
                // Poll until the payload lands (it was sent before tag 6).
                let mut got = None;
                for _ in 0..1000 {
                    got = comm.try_recv(1, 5);
                    if got.is_some() {
                        break;
                    }
                    std::thread::yield_now();
                }
                vec![f64::from(early), got.expect("payload delivered")[0]]
            } else {
                comm.send(0, 5, vec![77.0f64]);
                comm.send(0, 6, vec![]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![1.0, 77.0]);
    }

    #[test]
    fn probe_sees_without_consuming() {
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 2); // ensure tag-1 msg already queued
                let mut seen = false;
                for _ in 0..1000 {
                    if comm.probe(1, 1) {
                        seen = true;
                        break;
                    }
                    std::thread::yield_now();
                }
                assert!(seen, "probe never saw the message");
                assert!(comm.probe(1, 1), "probe must not consume");
                comm.recv(1, 1)
            } else {
                comm.send(0, 1, vec![5.0f64]);
                comm.send(0, 2, vec![]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![5.0]);
    }

    #[test]
    fn recv_any_matches_any_source() {
        let report = run(4, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                let mut from = Vec::new();
                for _ in 0..3 {
                    let (src, payload) = comm.recv_any(9);
                    assert_eq!(payload, vec![src as f64]);
                    from.push(src);
                }
                from.sort_unstable();
                from
            } else {
                comm.send(0, 9, vec![comm.rank() as f64]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![1, 2, 3]);
    }

    #[test]
    fn recv_any_leaves_other_tags_buffered() {
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                let (src, v) = comm.recv_any(11);
                assert_eq!(src, 1);
                // The tag-10 message must still be receivable.
                let w = comm.recv(1, 10);
                vec![v[0], w[0]]
            } else {
                comm.send(0, 10, vec![1.0f64]);
                comm.send(0, 11, vec![2.0f64]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![2.0, 1.0]);
    }

    #[test]
    fn try_recv_advances_clock_to_arrival() {
        let model = CostModel::new(0.0, 1.0, 0.0); // 1 s per word
        let report = run::<f64, _, _>(2, model, |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 2); // sync: payload already sent
                let mut clock_after = 0.0;
                for _ in 0..1000 {
                    if let Some(_v) = comm.try_recv(1, 1) {
                        clock_after = comm.clock();
                        break;
                    }
                    std::thread::yield_now();
                }
                clock_after
            } else {
                comm.send(0, 1, vec![0.0; 5]); // arrival at t = 5
                comm.send(0, 2, vec![]);
                0.0
            }
        });
        assert!(
            report.results[0] >= 5.0,
            "clock {} < arrival",
            report.results[0]
        );
    }

    // ---- fault injection -------------------------------------------

    #[test]
    fn dropped_message_times_out_with_typed_error() {
        let plan = FaultPlan::new().drop_message(0, 1, 0);
        let report = Universe::new(2, CostModel::zero())
            .faults(plan)
            .recv_deadline(2.0)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send_checked(1, 7, vec![1.0f64]).map(|_| vec![])
                } else {
                    comm.recv_checked(0, 7)
                }
            });
        assert_eq!(
            report.results[1],
            Err(CommError::Timeout { from: 0, tag: 7 })
        );
        // The receiver paid its full patience on the simulated clock.
        assert!(report.metrics[1].sim_time >= 2.0);
    }

    #[test]
    fn delayed_message_arrives_late_but_intact() {
        let plan = FaultPlan::new().delay_message(0, 1, 0, 5.0);
        let report = Universe::new(2, CostModel::zero())
            .faults(plan)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 7, vec![4.0f64]);
                    vec![]
                } else {
                    comm.recv(0, 7)
                }
            });
        assert_eq!(report.results[1], vec![4.0]);
        assert!(
            report.metrics[1].sim_time >= 5.0,
            "delay not charged: {}",
            report.metrics[1].sim_time
        );
    }

    #[test]
    fn deadline_rejects_late_arrival_then_retry_succeeds() {
        // Delay beyond the deadline: first checked recv times out (the
        // message stays in flight), the retry consumes it.
        let plan = FaultPlan::new().delay_message(0, 1, 0, 3.0);
        let report = Universe::new(2, CostModel::zero())
            .faults(plan)
            .recv_deadline(2.0)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 7, vec![4.0f64]);
                    (Ok(vec![]), Ok(vec![]))
                } else {
                    // Ensure the message is buffered before judging it.
                    while !comm.probe(0, 7) {
                        std::thread::yield_now();
                    }
                    let first = comm.recv_checked(0, 7);
                    let second = comm.recv_checked(0, 7);
                    (first, second)
                }
            });
        let (first, second) = &report.results[1];
        // Arrival is modeled at t = 3; the first receive gives up at
        // its deadline t = 2, the retry (limit t = 4) consumes it.
        assert_eq!(*first, Err(CommError::Timeout { from: 0, tag: 7 }));
        assert_eq!(*second, Ok(vec![4.0]));
    }

    #[test]
    fn crashed_rank_fails_own_ops_and_poisons_peers() {
        let plan = FaultPlan::new().crash_rank(1, 0);
        let report = Universe::new(3, CostModel::zero())
            .faults(plan)
            .recv_deadline(1.0)
            .run(|comm| match comm.rank() {
                1 => {
                    let first = comm.send_checked(0, 7, vec![1.0f64]);
                    let later = comm.send_checked(2, 7, vec![1.0f64]);
                    assert!(comm.is_crashed());
                    (first.err(), later.err())
                }
                _ => {
                    let got = comm.recv_checked(1, 7);
                    (got.err(), None)
                }
            });
        assert_eq!(
            report.results[1].0,
            Some(CommError::Crashed { rank: 1, op: 0 })
        );
        assert_eq!(
            report.results[1].1,
            Some(CommError::Crashed { rank: 1, op: 0 })
        );
        // Peers fail fast with the poisoned-mailbox error.
        assert_eq!(
            report.results[0].0,
            Some(CommError::PeerCrashed { from: 1 })
        );
        assert_eq!(
            report.results[2].0,
            Some(CommError::PeerCrashed { from: 1 })
        );
    }

    #[test]
    fn fault_outcomes_are_deterministic_across_runs() {
        let run_once = || {
            let plan = FaultPlan::new()
                .drop_message(0, 2, 0)
                .delay_message(0, 1, 0, 3.0)
                .crash_rank(3, 2);
            Universe::new(4, CostModel::zero())
                .faults(plan)
                .recv_deadline(2.0)
                .run(|comm| match comm.rank() {
                    0 => {
                        comm.recv_checked(3, 9)?;
                        comm.send_checked(1, 1, vec![1.0f64])?;
                        comm.send_checked(2, 1, vec![2.0f64])?;
                        Ok(comm.clock())
                    }
                    1 => {
                        comm.recv_checked(3, 9)?;
                        comm.recv_checked(0, 1).map(|_| comm.clock())
                    }
                    2 => {
                        // Rank 3 crashes on its third op — the send to
                        // us never happens.
                        let first = comm.recv_checked(3, 9);
                        assert!(first.is_err(), "rank 2 must see the crash");
                        comm.recv_checked(0, 1).map(|_| comm.clock())
                    }
                    3 => {
                        comm.send_checked(0, 9, vec![0.0f64])?;
                        comm.send_checked(1, 9, vec![0.0f64])?;
                        comm.send_checked(2, 9, vec![0.0f64]).map(|_| comm.clock())
                    }
                    _ => unreachable!(),
                })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.results, b.results);
        for (ma, mb) in a.metrics.iter().zip(b.metrics.iter()) {
            assert_eq!(ma.sim_time, mb.sim_time, "rank {} clock", ma.rank);
            assert_eq!(ma.words_sent, mb.words_sent);
            assert_eq!(ma.words_recv, mb.words_recv);
        }
    }

    #[test]
    #[should_panic(expected = "dropped by the fault plan")]
    fn infallible_recv_panics_on_dropped_message() {
        let plan = FaultPlan::new().drop_message(0, 1, 0);
        let _ = Universe::new(2, CostModel::zero())
            .faults(plan)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 7, vec![1.0f64]);
                    vec![]
                } else {
                    comm.recv(0, 7)
                }
            });
    }

    #[test]
    fn fault_free_universe_matches_plain_run_bit_for_bit() {
        let body = |comm: &mut crate::Comm<f64>| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.5f64, 2.5]);
                comm.recv(1, 8)
            } else {
                let v = comm.recv(0, 7);
                comm.send(0, 8, v.clone());
                v
            }
        };
        let plain = run(2, CostModel::new(1e-6, 1e-9, 0.0), body);
        let faulted = Universe::new(2, CostModel::new(1e-6, 1e-9, 0.0))
            .faults(FaultPlan::new())
            .recv_deadline(10.0)
            .run(body);
        assert_eq!(plain.results, faulted.results);
        for (a, b) in plain.metrics.iter().zip(faulted.metrics.iter()) {
            assert_eq!(a.sim_time, b.sim_time);
            assert_eq!(a.words_sent, b.words_sent);
        }
    }
}
