//! The per-rank communicator: point-to-point messaging with selective
//! receive, plus the simulated clock.

use crate::cost::CostModel;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reserved tag bit for collectives; user tags must stay below this.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 62;

/// A typed message between ranks.
#[derive(Debug, Clone)]
pub struct Message<T> {
    /// Sending rank.
    pub src: usize,
    /// User (or collective) tag.
    pub tag: u64,
    /// Payload elements.
    pub payload: Vec<T>,
    /// Simulated arrival time at the receiver.
    pub arrival: f64,
}

/// Per-rank communicator handle (the `MPI_Comm` + rank state analogue).
///
/// Owned exclusively by the rank's thread; all methods take `&mut self`.
pub struct Comm<T> {
    rank: usize,
    size: usize,
    model: CostModel,
    senders: Vec<Sender<Message<T>>>,
    receiver: Receiver<Message<T>>,
    /// Out-of-order buffer for selective receive.
    mailbox: VecDeque<Message<T>>,
    /// Simulated local time (seconds).
    clock: f64,
    /// Simulated seconds spent in compute (subset of `clock`).
    compute: f64,
    msgs_sent: u64,
    words_sent: u64,
    msgs_recv: u64,
    words_recv: u64,
    /// Receive timeout guarding against deadlocks in tests.
    timeout: Duration,
    /// Set by the universe when any rank panics: blocked receivers bail
    /// out promptly instead of waiting for the deadlock guard.
    abort: Arc<AtomicBool>,
}

impl<T: Send + 'static> Comm<T> {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        model: CostModel,
        senders: Vec<Sender<Message<T>>>,
        receiver: Receiver<Message<T>>,
        abort: Arc<AtomicBool>,
    ) -> Self {
        Self {
            rank,
            size,
            model,
            senders,
            receiver,
            mailbox: VecDeque::new(),
            clock: 0.0,
            compute: 0.0,
            msgs_sent: 0,
            words_sent: 0,
            msgs_recv: 0,
            words_recv: 0,
            timeout: Duration::from_secs(120),
            abort,
        }
    }

    /// Blocking channel read with abort/deadlock guards. Polls in short
    /// slices so a peer's failure surfaces in milliseconds, not at the
    /// deadlock-guard horizon.
    fn blocking_next(&mut self, what: &dyn Fn() -> String) -> Message<T> {
        let deadline = Instant::now() + self.timeout;
        loop {
            match self.receiver.recv_timeout(Duration::from_millis(20)) {
                Ok(msg) => return msg,
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        !self.abort.load(Ordering::Relaxed),
                        "rank {} aborting {}: another rank panicked",
                        self.rank,
                        what()
                    );
                    assert!(
                        Instant::now() < deadline,
                        "rank {} deadlocked {}",
                        self.rank,
                        what()
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while this Comm is alive (it holds a
                    // sender to itself), but bail out defensively.
                    panic!("rank {}: transport disconnected {}", self.rank, what());
                }
            }
        }
    }

    /// This rank's id, `0 .. size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current simulated time (seconds).
    #[inline]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Simulated compute seconds so far.
    #[inline]
    pub fn compute_time(&self) -> f64 {
        self.compute
    }

    /// Messages sent so far.
    #[inline]
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    /// Payload words sent so far.
    #[inline]
    pub fn words_sent(&self) -> u64 {
        self.words_sent
    }

    /// Messages received (consumed by a matching receive) so far.
    #[inline]
    pub fn msgs_recv(&self) -> u64 {
        self.msgs_recv
    }

    /// Payload words received so far — the quantity Proposition 4.2
    /// bounds at the root during retrieval.
    #[inline]
    pub fn words_recv(&self) -> u64 {
        self.words_recv
    }

    /// Cost model in force.
    #[inline]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Advance the simulated clock by `flops` of local computation.
    ///
    /// The caller still performs the computation for real; this only
    /// accounts for its *modeled* duration.
    pub fn add_compute_flops(&mut self, flops: f64) {
        let t = self.model.compute_time(flops);
        self.clock += t;
        self.compute += t;
    }

    /// Advance the simulated clock by an explicit duration (e.g. a
    /// measured kernel time instead of a modeled one).
    pub fn add_compute_seconds(&mut self, secs: f64) {
        assert!(secs >= 0.0, "negative compute time");
        self.clock += secs;
        self.compute += secs;
    }

    /// Send `payload` to rank `to` with `tag` (asynchronous, like
    /// `MPI_Isend` + eager buffering).
    ///
    /// # Panics
    /// If `to` is out of range or the tag collides with the reserved
    /// collective space.
    pub fn send(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        self.send_impl(to, tag, payload);
    }

    pub(crate) fn send_impl(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        assert!(
            to < self.size,
            "send to rank {to} out of range (size {})",
            self.size
        );
        let words = payload.len();
        // Sender occupied for the latency; payload lands after transfer.
        let arrival = self.clock + self.model.transfer_time(words);
        self.clock += self.model.alpha;
        self.msgs_sent += 1;
        self.words_sent += words as u64;
        let msg = Message {
            src: self.rank,
            tag,
            payload,
            arrival,
        };
        self.senders[to]
            .send(msg)
            .unwrap_or_else(|_| panic!("rank {to} hung up (send from {})", self.rank));
    }

    /// Blocking selective receive matching `(from, tag)`.
    ///
    /// Advances the simulated clock to the message's arrival time if the
    /// receiver got there early.
    ///
    /// # Panics
    /// If no matching message arrives within the deadlock-guard timeout.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        self.recv_impl(from, tag)
    }

    /// Consume a matched message: advance the clock to its arrival and
    /// account it on the receive counters.
    fn consume(&mut self, msg: Message<T>) -> Vec<T> {
        self.clock = self.clock.max(msg.arrival);
        self.msgs_recv += 1;
        self.words_recv += msg.payload.len() as u64;
        msg.payload
    }

    pub(crate) fn recv_impl(&mut self, from: usize, tag: u64) -> Vec<T> {
        // Check the out-of-order buffer first.
        if let Some(pos) = self
            .mailbox
            .iter()
            .position(|m| m.src == from && m.tag == tag)
        {
            let msg = self.mailbox.remove(pos).expect("position valid");
            return self.consume(msg);
        }
        loop {
            let msg = self.blocking_next(&|| format!("waiting for (src={from}, tag={tag})"));
            if msg.src == from && msg.tag == tag {
                return self.consume(msg);
            }
            self.mailbox.push_back(msg);
        }
    }

    /// Drain the channel into the mailbox without blocking.
    fn drain_channel(&mut self) {
        while let Ok(msg) = self.receiver.try_recv() {
            self.mailbox.push_back(msg);
        }
    }

    /// Non-blocking selective receive (`MPI_Iprobe` + matched receive):
    /// returns the payload if a matching message has *already* been
    /// delivered, `None` otherwise. Never advances past messages that do
    /// not match — they stay buffered for later `recv`s.
    ///
    /// Note the simulated-clock semantics: a message can be present in
    /// the transport (and thus returned here) while its modeled
    /// `arrival` time is in the future; like `recv`, the receiver's
    /// clock is advanced to the arrival time. This mirrors MPI progress
    /// semantics, where probing cannot observe a message earlier than
    /// the network could deliver it.
    ///
    /// # Panics
    /// If the tag collides with the reserved collective space.
    pub fn try_recv(&mut self, from: usize, tag: u64) -> Option<Vec<T>> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        self.drain_channel();
        let pos = self
            .mailbox
            .iter()
            .position(|m| m.src == from && m.tag == tag)?;
        let msg = self.mailbox.remove(pos).expect("position valid");
        Some(self.consume(msg))
    }

    /// True if a matching message is already deliverable (`MPI_Iprobe`).
    /// Does not consume the message or advance the clock.
    pub fn probe(&mut self, from: usize, tag: u64) -> bool {
        self.drain_channel();
        self.mailbox.iter().any(|m| m.src == from && m.tag == tag)
    }

    /// Blocking receive from *any* source with the given tag
    /// (`MPI_ANY_SOURCE`); returns `(source, payload)`. Among buffered
    /// candidates the earliest-buffered wins (FIFO fairness).
    ///
    /// # Panics
    /// If no matching message arrives within the deadlock-guard timeout,
    /// or on a reserved tag.
    pub fn recv_any(&mut self, tag: u64) -> (usize, Vec<T>) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} collides with reserved collective tags"
        );
        if let Some(pos) = self.mailbox.iter().position(|m| m.tag == tag) {
            let msg = self.mailbox.remove(pos).expect("position valid");
            let src = msg.src;
            return (src, self.consume(msg));
        }
        loop {
            let msg = self.blocking_next(&|| format!("waiting for (any src, tag={tag})"));
            if msg.tag == tag {
                let src = msg.src;
                return (src, self.consume(msg));
            }
            self.mailbox.push_back(msg);
        }
    }

    pub(crate) fn metrics(&self) -> crate::universe::RankMetrics {
        crate::universe::RankMetrics {
            rank: self.rank,
            sim_time: self.clock,
            compute_time: self.compute,
            msgs_sent: self.msgs_sent,
            words_sent: self.words_sent,
            msgs_recv: self.msgs_recv,
            words_recv: self.words_recv,
            wall_time: 0.0, // filled by the universe
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{run, CostModel};

    #[test]
    fn ping_pong_transfers_payload() {
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let v = comm.recv(0, 7);
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(report.results[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn selective_receive_reorders() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, vec![20.0f64]);
                comm.send(1, 1, vec![10.0f64]);
                vec![]
            } else {
                let first = comm.recv(0, 1);
                let second = comm.recv(0, 2);
                vec![first[0], second[0]]
            }
        });
        assert_eq!(report.results[1], vec![10.0, 20.0]);
    }

    #[test]
    fn clock_advances_with_messages_and_compute() {
        let model = CostModel::new(1.0, 0.5, 0.0); // alpha=1s, beta=0.5s/word
        let report = run::<f64, _, _>(2, model, |comm| {
            if comm.rank() == 0 {
                comm.add_compute_seconds(3.0);
                comm.send(1, 1, vec![0.0; 4]); // arrival = 3 + 1 + 2 = 6
                comm.clock()
            } else {
                let _ = comm.recv(0, 1);
                comm.clock()
            }
        });
        // Sender: 3 (compute) + 1 (latency) = 4.
        assert!((report.results[0] - 4.0).abs() < 1e-12);
        // Receiver jumped to the arrival time 6.
        assert!((report.results[1] - 6.0).abs() < 1e-12);
        assert!((report.critical_path() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_counters_are_exact() {
        let report = run(3, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![0.0f64; 10]);
                comm.send(2, 1, vec![0.0f64; 20]);
            } else {
                let _ = comm.recv(0, 1);
            }
        });
        assert_eq!(report.metrics[0].msgs_sent, 2);
        assert_eq!(report.metrics[0].words_sent, 30);
        assert_eq!(report.metrics[1].msgs_sent, 0);
        // Receive counters mirror the sends on the consuming side.
        assert_eq!(report.metrics[0].msgs_recv, 0);
        assert_eq!(report.metrics[1].msgs_recv, 1);
        assert_eq!(report.metrics[1].words_recv, 10);
        assert_eq!(report.metrics[2].words_recv, 20);
    }

    #[test]
    fn compute_flops_uses_model() {
        let model = CostModel::new(0.0, 0.0, 1e-9);
        let report = run::<f64, _, _>(1, model, |comm| {
            comm.add_compute_flops(2e9);
            comm.clock()
        });
        assert!((report.results[0] - 2.0).abs() < 1e-9);
        assert!((report.metrics[0].compute_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn send_to_self_works() {
        let report = run(1, CostModel::zero(), |comm| {
            comm.send(0, 5, vec![42.0f64]);
            comm.recv(0, 5)
        });
        assert_eq!(report.results[0], vec![42.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        let _ = run(1, CostModel::zero(), |comm| {
            comm.send(3, 1, vec![0.0f64]);
        });
    }

    #[test]
    fn try_recv_returns_none_until_delivery() {
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                // Nothing sent yet: must be None immediately.
                let early = comm.try_recv(1, 5).is_none();
                // Handshake so rank 1's message is definitely in flight.
                let _ = comm.recv(1, 6);
                // Poll until the payload lands (it was sent before tag 6).
                let mut got = None;
                for _ in 0..1000 {
                    got = comm.try_recv(1, 5);
                    if got.is_some() {
                        break;
                    }
                    std::thread::yield_now();
                }
                vec![f64::from(early), got.expect("payload delivered")[0]]
            } else {
                comm.send(0, 5, vec![77.0f64]);
                comm.send(0, 6, vec![]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![1.0, 77.0]);
    }

    #[test]
    fn probe_sees_without_consuming() {
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 2); // ensure tag-1 msg already queued
                let mut seen = false;
                for _ in 0..1000 {
                    if comm.probe(1, 1) {
                        seen = true;
                        break;
                    }
                    std::thread::yield_now();
                }
                assert!(seen, "probe never saw the message");
                assert!(comm.probe(1, 1), "probe must not consume");
                comm.recv(1, 1)
            } else {
                comm.send(0, 1, vec![5.0f64]);
                comm.send(0, 2, vec![]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![5.0]);
    }

    #[test]
    fn recv_any_matches_any_source() {
        let report = run(4, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                let mut from = Vec::new();
                for _ in 0..3 {
                    let (src, payload) = comm.recv_any(9);
                    assert_eq!(payload, vec![src as f64]);
                    from.push(src);
                }
                from.sort_unstable();
                from
            } else {
                comm.send(0, 9, vec![comm.rank() as f64]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![1, 2, 3]);
    }

    #[test]
    fn recv_any_leaves_other_tags_buffered() {
        let report = run(2, CostModel::zero(), |comm| {
            if comm.rank() == 0 {
                let (src, v) = comm.recv_any(11);
                assert_eq!(src, 1);
                // The tag-10 message must still be receivable.
                let w = comm.recv(1, 10);
                vec![v[0], w[0]]
            } else {
                comm.send(0, 10, vec![1.0f64]);
                comm.send(0, 11, vec![2.0f64]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![2.0, 1.0]);
    }

    #[test]
    fn try_recv_advances_clock_to_arrival() {
        let model = CostModel::new(0.0, 1.0, 0.0); // 1 s per word
        let report = run::<f64, _, _>(2, model, |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 2); // sync: payload already sent
                let mut clock_after = 0.0;
                for _ in 0..1000 {
                    if let Some(_v) = comm.try_recv(1, 1) {
                        clock_after = comm.clock();
                        break;
                    }
                    std::thread::yield_now();
                }
                clock_after
            } else {
                comm.send(0, 1, vec![0.0; 5]); // arrival at t = 5
                comm.send(0, 2, vec![]);
                0.0
            }
        });
        assert!(
            report.results[0] >= 5.0,
            "clock {} < arrival",
            report.results[0]
        );
    }
}
