//! SPMD collectives built on the point-to-point layer.
//!
//! Every rank must call the same collective in the same order (the usual
//! MPI contract). Rooted operations use rank 0 as the root, matching the
//! paper's distribute-compute-retrieve structure where `p0` owns the
//! input and the result (§4.3).
//!
//! Broadcast and reduction use binomial trees (`ceil(log2 P)` rounds);
//! the plain [`Comm::gather_to_root`] is linear at the root.
//!
//! The *tree-pipelined* variable-count pair
//! [`Comm::tree_scatterv`] / [`Comm::tree_gatherv`] is what the
//! refactored distributed stack builds on — AtA-D's distribution phase
//! scatters its per-rank operand chunks, and the `pdsyrk` baseline's
//! band retrieval gathers — a recursive-halving binomial tree over
//! contiguous rank ranges. Under
//! the LogGP clock this pipelines — while the root is busy with the
//! latency of its second send, the first subtree's leader is already
//! forwarding — so the root pays `O(log P)` latencies instead of one per
//! remote leaf block, at the cost of forwarded bandwidth on interior
//! ranks. The per-rank payload sizes (`counts`) must be known on every
//! rank (the usual `MPI_Scatterv`/`MPI_Gatherv` contract); AtA-D derives
//! them deterministically from the task tree and the wire format.

use crate::comm::{Comm, COLLECTIVE_TAG_BASE};
use crate::fault::CommError;

fn ceil_log2(x: usize) -> u32 {
    (usize::BITS - x.saturating_sub(1).leading_zeros()).min(usize::BITS - 1)
}

impl<T: Send + 'static> Comm<T> {
    fn coll_tag(&mut self, round: u32) -> u64 {
        // Collectives are globally ordered per the SPMD contract, so a
        // per-round offset inside the reserved space cannot collide with
        // user tags. Distinct collectives are separated because each
        // round's matching is by (src, tag) and sources differ.
        COLLECTIVE_TAG_BASE + round as u64
    }

    /// Block until all ranks reach the barrier.
    pub fn barrier(&mut self) {
        // Reduce an empty payload to root, then broadcast the release
        // down the same binomial tree (mirrored manually because the
        // payload type need not be `Clone` — payloads here are empty).
        let _ = self.reduce_to_root(Vec::new(), |_, _| {});
        let rank = self.rank();
        let size = self.size();
        let levels = ceil_log2(size);
        for t in 0..levels {
            let stride = 1usize << t;
            let tag = self.coll_tag(u32::MAX - 40 - t);
            if rank < stride {
                if rank + stride < size {
                    self.send_impl(rank + stride, tag, Vec::new());
                }
            } else if rank < stride * 2 {
                let _ = self.recv_impl(rank - stride, tag);
            }
        }
    }

    /// Broadcast from rank 0: the root passes `Some(data)`, everyone
    /// else `None`; all ranks return the data.
    ///
    /// # Panics
    /// If the root passes `None` or a non-root passes `Some`.
    pub fn bcast_from_root(&mut self, data: Option<Vec<T>>) -> Vec<T>
    where
        T: Clone,
    {
        let rank = self.rank();
        let size = self.size();
        if rank == 0 {
            assert!(data.is_some(), "root must provide broadcast data");
        } else {
            assert!(data.is_none(), "non-root rank {rank} must pass None");
        }
        let mut held = data;
        let levels = ceil_log2(size);
        for t in 0..levels {
            let stride = 1usize << t;
            let tag = self.coll_tag(t);
            if rank < stride {
                if rank + stride < size {
                    let payload = held.as_ref().expect("sender must hold data").clone();
                    self.send_impl(rank + stride, tag, payload);
                }
            } else if rank < stride * 2 {
                held = Some(self.recv_impl(rank - stride, tag));
            }
        }
        held.expect("every rank holds the data after the last round")
    }

    /// Gather every rank's payload at rank 0; returns `Some(vec indexed
    /// by rank)` at the root, `None` elsewhere.
    pub fn gather_to_root(&mut self, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        let rank = self.rank();
        let size = self.size();
        let tag = self.coll_tag(u32::MAX - 1);
        if rank == 0 {
            let mut all = Vec::with_capacity(size);
            all.push(data);
            for src in 1..size {
                all.push(self.recv_impl(src, tag));
            }
            Some(all)
        } else {
            self.send_impl(0, tag, data);
            None
        }
    }

    /// Binomial-tree reduction to rank 0. `combine(acc, other)` merges a
    /// child's contribution into the local accumulator; returns
    /// `Some(result)` at the root, `None` elsewhere.
    ///
    /// All ranks must contribute equal-length payloads.
    pub fn reduce_to_root(
        &mut self,
        data: Vec<T>,
        combine: impl Fn(&mut Vec<T>, Vec<T>),
    ) -> Option<Vec<T>> {
        let rank = self.rank();
        let size = self.size();
        let mut acc = data;
        let levels = ceil_log2(size);
        for t in 0..levels {
            let mask = 1usize << t;
            let tag = self.coll_tag(u32::MAX - 2 - t);
            if rank & mask != 0 {
                self.send_impl(rank - mask, tag, acc);
                return None;
            }
            let peer = rank | mask;
            if peer < size && peer != rank {
                let other = self.recv_impl(peer, tag);
                combine(&mut acc, other);
            }
        }
        Some(acc)
    }

    /// Reduction delivered to *every* rank (`MPI_Allreduce`): a binomial
    /// reduce to the root followed by a binomial broadcast — `2 log P`
    /// rounds.
    pub fn allreduce(&mut self, data: Vec<T>, combine: impl Fn(&mut Vec<T>, Vec<T>)) -> Vec<T>
    where
        T: Clone,
    {
        let reduced = self.reduce_to_root(data, combine);
        // Only rank 0 holds Some; bcast's contract is exactly that.
        self.bcast_from_root(reduced)
    }

    /// Rooted scatter (`MPI_Scatterv`): rank 0 passes one chunk per rank
    /// (`chunks[r]` goes to rank `r`, chunks may differ in length);
    /// everyone returns their chunk. Linear at the root, mirroring the
    /// distribution phase of AtA-D where `p0` owns all of `A`.
    ///
    /// # Panics
    /// If the root passes `None` / a wrong-length list, or a non-root
    /// passes `Some`.
    pub fn scatter_from_root(&mut self, chunks: Option<Vec<Vec<T>>>) -> Vec<T> {
        let rank = self.rank();
        let size = self.size();
        let tag = self.coll_tag(u32::MAX - 80);
        if rank == 0 {
            let mut chunks = chunks.expect("root must provide scatter chunks");
            assert_eq!(chunks.len(), size, "need exactly one chunk per rank");
            // Send in reverse so we can pop without shifting; delivery
            // order per peer is irrelevant (distinct destinations).
            for r in (1..size).rev() {
                let chunk = chunks.pop().expect("length checked");
                self.send_impl(r, tag, chunk);
            }
            chunks.pop().expect("rank 0's own chunk")
        } else {
            assert!(chunks.is_none(), "non-root rank {rank} must pass None");
            self.recv_impl(0, tag)
        }
    }

    /// Tree-pipelined rooted scatter (`MPI_Scatterv` on a binomial
    /// tree): rank 0 passes one chunk per rank (`chunks[r]` goes to rank
    /// `r`); every rank returns its chunk. `counts[r]` must equal
    /// `chunks[r].len()` and be known on **all** ranks — receivers use
    /// it to carve forwarded payloads, so no sizes travel on the wire.
    ///
    /// The tree is recursive halving over contiguous rank ranges: the
    /// leader of `[lo, hi)` ships the concatenated chunks of the upper
    /// half `[mid, hi)` to rank `mid`, which forwards within its own
    /// half concurrently. The root therefore sends `ceil(log2 P)`
    /// messages (vs one per rank for [`Comm::scatter_from_root`]) and
    /// the same total words; interior ranks pay forwarding bandwidth,
    /// which the LogGP clock overlaps across subtrees.
    ///
    /// # Panics
    /// If the root passes `None` / wrong-shape chunks, a non-root passes
    /// `Some`, or `counts` disagrees with the universe size.
    pub fn tree_scatterv(&mut self, chunks: Option<Vec<Vec<T>>>, counts: &[usize]) -> Vec<T> {
        let rank = self.rank();
        let size = self.size();
        assert_eq!(counts.len(), size, "need one count per rank");
        let mut held: Vec<T> = if rank == 0 {
            let chunks = chunks.expect("root must provide scatter chunks");
            assert_eq!(chunks.len(), size, "need exactly one chunk per rank");
            for (r, c) in chunks.iter().enumerate() {
                assert_eq!(c.len(), counts[r], "chunk {r} disagrees with counts");
            }
            chunks.into_iter().flatten().collect()
        } else {
            assert!(chunks.is_none(), "non-root rank {rank} must pass None");
            Vec::new()
        };
        let (mut lo, mut hi) = (0usize, size);
        let mut round = 0u32;
        while hi - lo > 1 {
            let span = hi - lo;
            let mid = lo + (1usize << (ceil_log2(span) - 1));
            let tag = self.coll_tag(u32::MAX - 200 - round);
            if rank < mid {
                if rank == lo {
                    let keep: usize = counts[lo..mid].iter().sum();
                    let tail = held.split_off(keep);
                    self.send_impl(mid, tag, tail);
                }
                hi = mid;
            } else {
                if rank == mid {
                    held = self.recv_impl(lo, tag);
                }
                lo = mid;
            }
            round += 1;
        }
        debug_assert_eq!(held.len(), counts[rank], "rank {rank} chunk size");
        held
    }

    /// Fault-aware [`Comm::tree_scatterv`]: identical tree, tags and
    /// LogGP charges, but injected faults surface as `Err(CommError)`
    /// instead of panics. Shape errors (wrong chunk count, counts
    /// mismatch) remain panics — they are programming errors, not
    /// faults.
    pub fn tree_scatterv_checked(
        &mut self,
        chunks: Option<Vec<Vec<T>>>,
        counts: &[usize],
    ) -> Result<Vec<T>, CommError> {
        let rank = self.rank();
        let size = self.size();
        assert_eq!(counts.len(), size, "need one count per rank");
        let mut held: Vec<T> = if rank == 0 {
            let chunks = chunks.expect("root must provide scatter chunks");
            assert_eq!(chunks.len(), size, "need exactly one chunk per rank");
            for (r, c) in chunks.iter().enumerate() {
                assert_eq!(c.len(), counts[r], "chunk {r} disagrees with counts");
            }
            chunks.into_iter().flatten().collect()
        } else {
            assert!(chunks.is_none(), "non-root rank {rank} must pass None");
            Vec::new()
        };
        let (mut lo, mut hi) = (0usize, size);
        let mut round = 0u32;
        while hi - lo > 1 {
            let span = hi - lo;
            let mid = lo + (1usize << (ceil_log2(span) - 1));
            let tag = self.coll_tag(u32::MAX - 200 - round);
            if rank < mid {
                if rank == lo {
                    let keep: usize = counts[lo..mid].iter().sum();
                    let tail = held.split_off(keep);
                    self.send_impl_checked(mid, tag, tail)?;
                }
                hi = mid;
            } else {
                if rank == mid {
                    held = self.recv_impl_checked(lo, tag)?;
                }
                lo = mid;
            }
            round += 1;
        }
        debug_assert_eq!(held.len(), counts[rank], "rank {rank} chunk size");
        Ok(held)
    }

    /// Tree-pipelined rooted gather (`MPI_Gatherv` on a binomial tree):
    /// every rank contributes `data` (of length `counts[rank]`, known on
    /// all ranks); the root returns `Some(vec indexed by rank)`,
    /// everyone else `None`.
    ///
    /// The exact mirror of [`Comm::tree_scatterv`]: subtree leaders
    /// accumulate their half before forwarding down-tree, so the root
    /// receives `ceil(log2 P)` messages instead of `P - 1` — the
    /// retrieval-phase analogue of the distribution pipelining.
    ///
    /// # Panics
    /// If `data.len() != counts[rank]` or `counts` disagrees with the
    /// universe size.
    pub fn tree_gatherv(&mut self, data: Vec<T>, counts: &[usize]) -> Option<Vec<Vec<T>>> {
        let rank = self.rank();
        let size = self.size();
        assert_eq!(counts.len(), size, "need one count per rank");
        assert_eq!(
            data.len(),
            counts[rank],
            "rank {rank} payload disagrees with counts"
        );
        // Record this rank's descent through the scatter splits, then
        // replay it bottom-up: deepest merges first, root hop last.
        let mut splits: Vec<(usize, usize, u32)> = Vec::new();
        let (mut lo, mut hi) = (0usize, size);
        let mut round = 0u32;
        while hi - lo > 1 {
            let span = hi - lo;
            let mid = lo + (1usize << (ceil_log2(span) - 1));
            splits.push((lo, mid, round));
            if rank < mid {
                hi = mid;
            } else {
                lo = mid;
            }
            round += 1;
        }
        let mut held = data;
        for &(lo, mid, round) in splits.iter().rev() {
            let tag = self.coll_tag(u32::MAX - 300 - round);
            if rank == mid {
                // My subtree [mid, hi) is fully accumulated: ship it.
                self.send_impl(lo, tag, std::mem::take(&mut held));
            } else if rank == lo {
                let tail = self.recv_impl(mid, tag);
                held.extend(tail);
            }
        }
        if rank == 0 {
            let mut out = Vec::with_capacity(size);
            let mut iter = held.into_iter();
            for &c in counts {
                out.push(iter.by_ref().take(c).collect());
            }
            Some(out)
        } else {
            None
        }
    }

    /// Fault-aware [`Comm::tree_gatherv`]: identical tree, tags and
    /// LogGP charges, with injected faults surfacing as
    /// `Err(CommError)` instead of panics.
    pub fn tree_gatherv_checked(
        &mut self,
        data: Vec<T>,
        counts: &[usize],
    ) -> Result<Option<Vec<Vec<T>>>, CommError> {
        let rank = self.rank();
        let size = self.size();
        assert_eq!(counts.len(), size, "need one count per rank");
        assert_eq!(
            data.len(),
            counts[rank],
            "rank {rank} payload disagrees with counts"
        );
        let mut splits: Vec<(usize, usize, u32)> = Vec::new();
        let (mut lo, mut hi) = (0usize, size);
        let mut round = 0u32;
        while hi - lo > 1 {
            let span = hi - lo;
            let mid = lo + (1usize << (ceil_log2(span) - 1));
            splits.push((lo, mid, round));
            if rank < mid {
                hi = mid;
            } else {
                lo = mid;
            }
            round += 1;
        }
        let mut held = data;
        for &(lo, mid, round) in splits.iter().rev() {
            let tag = self.coll_tag(u32::MAX - 300 - round);
            if rank == mid {
                self.send_impl_checked(lo, tag, std::mem::take(&mut held))?;
            } else if rank == lo {
                let tail = self.recv_impl_checked(mid, tag)?;
                held.extend(tail);
            }
        }
        if rank == 0 {
            let mut out = Vec::with_capacity(size);
            let mut iter = held.into_iter();
            for &c in counts {
                out.push(iter.by_ref().take(c).collect());
            }
            Ok(Some(out))
        } else {
            Ok(None)
        }
    }

    /// All-gather (`MPI_Allgatherv`): every rank contributes a payload
    /// and every rank returns the list indexed by rank. Payload lengths
    /// may differ per rank — receivers learn them from the messages
    /// themselves.
    ///
    /// Implemented as a direct exchange (`P(P-1)` messages); the
    /// workspace only uses it at coarse granularity, where the paper's
    /// `O(log P)` latency terms are dominated by bandwidth anyway.
    pub fn allgather(&mut self, data: Vec<T>) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        let rank = self.rank();
        let size = self.size();
        let tag = self.coll_tag(u32::MAX - 90);
        for r in 0..size {
            if r != rank {
                self.send_impl(r, tag, data.clone());
            }
        }
        (0..size)
            .map(|src| {
                if src == rank {
                    data.clone()
                } else {
                    self.recv_impl(src, tag)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{run, CostModel};

    #[test]
    fn bcast_delivers_to_all() {
        for size in [1usize, 2, 3, 5, 8, 13] {
            let report = run(size, CostModel::zero(), |comm| {
                let data = if comm.rank() == 0 {
                    Some(vec![3.5f64, 4.5])
                } else {
                    None
                };
                comm.bcast_from_root(data)
            });
            for r in &report.results {
                assert_eq!(r, &vec![3.5, 4.5], "size={size}");
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let report = run(5, CostModel::zero(), |comm| {
            comm.gather_to_root(vec![comm.rank() as f64])
        });
        let gathered = report.results[0].as_ref().expect("root gathers");
        assert_eq!(gathered.len(), 5);
        for (i, v) in gathered.iter().enumerate() {
            assert_eq!(v, &vec![i as f64]);
        }
        assert!(report.results[1].is_none());
    }

    #[test]
    fn reduce_sums_across_ranks() {
        for size in [1usize, 2, 4, 7, 16] {
            let report = run(size, CostModel::zero(), |comm| {
                let local = vec![comm.rank() as f64, 1.0];
                comm.reduce_to_root(local, |acc, other| {
                    for (a, b) in acc.iter_mut().zip(other) {
                        *a += b;
                    }
                })
            });
            let total = report.results[0].as_ref().expect("root reduces");
            let expect0 = (0..size).sum::<usize>() as f64;
            assert_eq!(total[0], expect0, "size={size}");
            assert_eq!(total[1], size as f64, "size={size}");
        }
    }

    #[test]
    fn barrier_synchronizes_clocks_loosely() {
        // After a barrier, every rank's clock is at least the slowest
        // rank's pre-barrier clock.
        let model = CostModel::new(0.0, 0.0, 1.0);
        let report = run::<f64, _, _>(4, model, |comm| {
            comm.add_compute_flops(comm.rank() as f64); // rank r: r seconds
            comm.barrier();
            comm.clock()
        });
        for (i, c) in report.results.iter().enumerate() {
            assert!(*c >= 3.0 - 1e-12, "rank {i} clock {c} below slowest");
        }
    }

    #[test]
    fn reduce_tree_is_logarithmic_in_messages() {
        let report = run(16, CostModel::zero(), |comm| {
            let _ = comm.reduce_to_root(vec![1.0f64], |acc, o| acc[0] += o[0]);
        });
        // Binomial tree: exactly size - 1 messages in total.
        assert_eq!(report.total_msgs(), 15);
        // And the root receives only log2(16) = 4 of them directly.
        let root_recv = report
            .metrics
            .iter()
            .filter(|m| m.rank != 0)
            .filter(|m| m.msgs_sent > 0)
            .count();
        assert_eq!(root_recv, 15, "every non-root sends exactly once");
    }

    #[test]
    fn mixed_collectives_in_sequence() {
        let report = run(6, CostModel::zero(), |comm| {
            let b = comm.bcast_from_root(if comm.rank() == 0 {
                Some(vec![2.0f64])
            } else {
                None
            });
            comm.barrier();
            let r = comm.reduce_to_root(vec![b[0] * comm.rank() as f64], |acc, o| acc[0] += o[0]);
            comm.barrier();
            r
        });
        let sum = report.results[0].as_ref().expect("root");
        assert_eq!(sum[0], 2.0 * (1 + 2 + 3 + 4 + 5) as f64);
    }

    #[test]
    fn allreduce_delivers_the_sum_everywhere() {
        for size in [1usize, 2, 5, 8] {
            let report = run(size, CostModel::zero(), |comm| {
                comm.allreduce(vec![comm.rank() as f64 + 1.0], |acc, o| acc[0] += o[0])
            });
            let want = (1..=size).sum::<usize>() as f64;
            for (r, v) in report.results.iter().enumerate() {
                assert_eq!(v[0], want, "size={size}, rank={r}");
            }
        }
    }

    #[test]
    fn scatter_delivers_per_rank_chunks() {
        let report = run(4, CostModel::zero(), |comm| {
            let chunks = (comm.rank() == 0).then(|| {
                (0..4)
                    .map(|r| vec![r as f64; r + 1]) // ragged on purpose
                    .collect::<Vec<_>>()
            });
            comm.scatter_from_root(chunks)
        });
        for (r, chunk) in report.results.iter().enumerate() {
            assert_eq!(chunk, &vec![r as f64; r + 1], "rank {r}");
        }
    }

    #[test]
    fn tree_scatterv_delivers_ragged_chunks() {
        for size in [1usize, 2, 3, 5, 8, 13] {
            let counts: Vec<usize> = (0..size).map(|r| r + 1).collect();
            let counts_ref = &counts;
            let report = run(size, CostModel::zero(), move |comm| {
                let chunks = (comm.rank() == 0)
                    .then(|| (0..size).map(|r| vec![r as f64; r + 1]).collect::<Vec<_>>());
                comm.tree_scatterv(chunks, counts_ref)
            });
            for (r, chunk) in report.results.iter().enumerate() {
                assert_eq!(chunk, &vec![r as f64; r + 1], "size={size} rank={r}");
            }
        }
    }

    #[test]
    fn tree_gatherv_collects_in_rank_order() {
        for size in [1usize, 2, 4, 6, 9, 16] {
            let counts: Vec<usize> = (0..size).map(|r| (r % 3) + 1).collect();
            let counts_ref = &counts;
            let report = run(size, CostModel::zero(), move |comm| {
                let r = comm.rank();
                comm.tree_gatherv(vec![r as f64; counts_ref[r]], counts_ref)
            });
            let gathered = report.results[0].as_ref().expect("root gathers");
            for (r, part) in gathered.iter().enumerate() {
                assert_eq!(part, &vec![r as f64; (r % 3) + 1], "size={size} rank={r}");
            }
            for r in 1..size {
                assert!(report.results[r].is_none(), "rank {r} must return None");
            }
        }
    }

    #[test]
    fn tree_scatter_root_sends_logarithmically_many_messages() {
        let size = 16usize;
        let counts = vec![4usize; size];
        let counts_ref = &counts;
        let report = run(size, CostModel::zero(), move |comm| {
            let chunks = (comm.rank() == 0).then(|| (0..size).map(|r| vec![r as f64; 4]).collect());
            let _ = comm.tree_scatterv(chunks, counts_ref);
        });
        // Binomial tree: P - 1 messages in total, only log2(P) from the
        // root (vs P - 1 root messages for the linear scatter).
        assert_eq!(report.total_msgs(), 15);
        assert_eq!(report.metrics[0].msgs_sent, 4);
        // The root still ships every remote word exactly once.
        assert_eq!(report.metrics[0].words_sent, 4 * 15);
        // Interior forwarders pay bandwidth: total words exceed the
        // linear scatter's.
        assert!(report.total_words() > 4 * 15);
    }

    #[test]
    fn tree_gather_root_receives_logarithmically_many_messages() {
        let size = 16usize;
        let counts = vec![3usize; size];
        let counts_ref = &counts;
        let report = run(size, CostModel::zero(), move |comm| {
            let r = comm.rank();
            comm.tree_gatherv(vec![r as f64; 3], counts_ref)
        });
        assert!(report.results[0].is_some());
        assert_eq!(report.metrics[0].msgs_recv, 4);
        assert_eq!(report.metrics[0].words_recv, 3 * 15);
    }

    #[test]
    fn tree_scatter_gather_roundtrip_with_empty_chunks() {
        // Zero-length chunks (ranks owning no leaves) must flow through
        // both trees unharmed.
        let size = 7usize;
        let counts = vec![2usize, 0, 3, 0, 0, 1, 2];
        let counts_ref = &counts;
        let report = run(size, CostModel::zero(), move |comm| {
            let chunks = (comm.rank() == 0).then(|| {
                counts_ref
                    .iter()
                    .enumerate()
                    .map(|(r, &c)| vec![r as f64 * 10.0; c])
                    .collect()
            });
            let mine = comm.tree_scatterv(chunks, counts_ref);
            comm.tree_gatherv(mine, counts_ref)
        });
        let back = report.results[0].as_ref().expect("root");
        for (r, part) in back.iter().enumerate() {
            assert_eq!(part, &vec![r as f64 * 10.0; counts[r]], "rank {r}");
        }
    }

    #[test]
    fn tree_scatter_pipelines_under_loggp() {
        // With latency-only costs, the linear scatter's root pays
        // alpha * (P - 1); the tree's critical path is O(log P) alphas
        // per branch. At P = 16 the tree must finish strictly sooner.
        let model = CostModel::new(1.0, 0.0, 0.0);
        let size = 16usize;
        let counts = vec![1usize; size];
        let counts_ref = &counts;
        let tree = run(size, model, move |comm| {
            let chunks = (comm.rank() == 0).then(|| (0..size).map(|r| vec![r as f64]).collect());
            let _ = comm.tree_scatterv(chunks, counts_ref);
        });
        let linear = run(size, model, move |comm| {
            let chunks = (comm.rank() == 0).then(|| (0..size).map(|r| vec![r as f64]).collect());
            let _ = comm.scatter_from_root(chunks);
        });
        assert!(
            tree.critical_path() < linear.critical_path(),
            "tree {} !< linear {}",
            tree.critical_path(),
            linear.critical_path()
        );
    }

    #[test]
    #[should_panic(expected = "disagrees with counts")]
    fn tree_scatterv_rejects_mismatched_counts() {
        let _ = run(2, CostModel::zero(), |comm| {
            let counts = vec![1usize, 1];
            let chunks = (comm.rank() == 0).then(|| vec![vec![0.0f64; 2], vec![0.0]]);
            comm.tree_scatterv(chunks, &counts);
        });
    }

    #[test]
    fn allgather_everyone_sees_everyone_in_rank_order() {
        let report = run(5, CostModel::zero(), |comm| {
            comm.allgather(vec![comm.rank() as f64; comm.rank() + 1])
        });
        for (r, all) in report.results.iter().enumerate() {
            assert_eq!(all.len(), 5, "rank {r}");
            for (src, part) in all.iter().enumerate() {
                assert_eq!(part, &vec![src as f64; src + 1], "rank {r} view of {src}");
            }
        }
    }

    #[test]
    fn allgather_single_rank_is_identity() {
        let report = run(1, CostModel::zero(), |comm| comm.allgather(vec![9.0f64]));
        assert_eq!(report.results[0], vec![vec![9.0]]);
    }

    #[test]
    #[should_panic(expected = "one chunk per rank")]
    fn scatter_wrong_chunk_count_panics() {
        let _ = run(3, CostModel::zero(), |comm| {
            let chunks = (comm.rank() == 0).then(|| vec![vec![0.0f64]; 2]);
            if comm.rank() == 0 {
                comm.scatter_from_root(chunks);
            }
        });
    }

    #[test]
    fn collectives_compose_with_point_to_point() {
        // allreduce, then a p2p exchange that depends on its value.
        let report = run(4, CostModel::zero(), |comm| {
            let total = comm.allreduce(vec![1.0f64], |a, o| a[0] += o[0])[0];
            if comm.rank() == 0 {
                comm.send(1, 3, vec![total * 10.0]);
                total
            } else if comm.rank() == 1 {
                comm.recv(0, 3)[0]
            } else {
                total
            }
        });
        assert_eq!(report.results[0], 4.0);
        assert_eq!(report.results[1], 40.0);
        assert_eq!(report.results[3], 4.0);
    }
}
