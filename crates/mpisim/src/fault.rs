//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a *schedule* of network and process faults fixed
//! before the universe starts: drop the `nth` message on a directed edge
//! `(from, to)`, delay such a message by extra LogGP seconds, or crash a
//! rank at its `k`-th communication operation. Because the plan is data
//! (not callbacks) and every rank's op/edge counters are deterministic,
//! the same plan over the same program produces the same fault sequence
//! on every run, independent of thread interleaving — chaos tests are
//! replayable from a single seed.
//!
//! Faults surface through the *checked* communication API
//! ([`crate::Comm::send_checked`] / [`crate::Comm::recv_checked`] and the
//! `_checked` collectives) as typed [`CommError`]s:
//!
//! * a dropped message leaves a tombstone at the receiver, which a
//!   deadline-carrying receive converts into [`CommError::Timeout`]
//!   after `recv_deadline` simulated seconds — never a hang;
//! * a crashed rank fails all of its own subsequent ops with
//!   [`CommError::Crashed`] and broadcasts a poison marker so peers
//!   blocked on it fail fast with [`CommError::PeerCrashed`].
//!
//! The infallible API ([`crate::Comm::send`] / [`crate::Comm::recv`])
//! still works under a plan — drops and delays apply — but surfacing a
//! fault through it panics with a descriptive message, because only the
//! checked API can report one.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A typed communication failure surfaced by the checked API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommError {
    /// No matching message arrived within `recv_deadline` simulated
    /// seconds (the message was dropped, or is modeled to arrive later
    /// than the receiver was willing to wait).
    Timeout {
        /// Rank the receive was matching on.
        from: usize,
        /// Tag the receive was matching on.
        tag: u64,
    },
    /// The peer this receive was matching on crashed before satisfying
    /// it.
    PeerCrashed {
        /// The crashed peer's rank.
        from: usize,
    },
    /// This rank itself crashed (by plan) at the given communication op
    /// index; every subsequent checked op returns this.
    Crashed {
        /// The crashed rank (the caller's own rank).
        rank: usize,
        /// Zero-based communication-op index at which the crash fired.
        op: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { from, tag } => {
                write!(f, "receive timed out waiting for (src={from}, tag={tag})")
            }
            CommError::PeerCrashed { from } => write!(f, "peer rank {from} crashed"),
            CommError::Crashed { rank, op } => {
                write!(f, "rank {rank} crashed at communication op {op}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Bounds for [`FaultPlan::seeded`]: how many faults of each kind a
/// seeded plan may contain and where they may land.
///
/// Counts are drawn uniformly in `0..=max_*`, so a sweep over seeds
/// includes fault-free plans (retries can succeed) as well as
/// multi-fault ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Maximum dropped messages per plan.
    pub max_drops: usize,
    /// Maximum delayed messages per plan.
    pub max_delays: usize,
    /// Maximum crashed ranks per plan.
    pub max_crashes: usize,
    /// Dropped/delayed messages target the `nth` message on an edge with
    /// `nth < edge_horizon`.
    pub edge_horizon: u64,
    /// Crashes target op indices `k < op_horizon`.
    pub op_horizon: u64,
    /// Base extra latency for a delayed message (seconds of simulated
    /// time); each delay is scaled by a factor in `[0.5, 2)`.
    pub delay_secs: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            max_drops: 2,
            max_delays: 2,
            max_crashes: 1,
            edge_horizon: 6,
            op_horizon: 24,
            delay_secs: 1e-3,
        }
    }
}

impl FaultSpec {
    /// A spec that injects only delays — results stay bit-identical to
    /// the fault-free run, only the simulated clocks move.
    pub fn delays_only() -> Self {
        Self {
            max_drops: 0,
            max_delays: 4,
            max_crashes: 0,
            ..Self::default()
        }
    }
}

/// A deterministic schedule of injected faults (see the module docs).
///
/// Build one explicitly with the `drop_message` / `delay_message` /
/// `crash_rank` builders, or draw one from a seed with
/// [`FaultPlan::seeded`], then install it on a
/// [`crate::Universe`](crate::universe::Universe).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// `(from, to, nth)`: drop the `nth` (0-based) message sent on the
    /// directed edge `from -> to`.
    drops: BTreeSet<(usize, usize, u64)>,
    /// `(from, to, nth) -> extra_secs`: add simulated latency to that
    /// message's arrival.
    delays: BTreeMap<(usize, usize, u64), f64>,
    /// `rank -> k`: crash `rank` when it begins its `k`-th (0-based)
    /// communication op.
    crashes: BTreeMap<usize, u64>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty() && self.delays.is_empty() && self.crashes.is_empty()
    }

    /// Drop the `nth` (0-based) message sent from `from` to `to`.
    pub fn drop_message(mut self, from: usize, to: usize, nth: u64) -> Self {
        self.drops.insert((from, to, nth));
        self
    }

    /// Delay the `nth` (0-based) message from `from` to `to` by
    /// `extra_secs` of simulated arrival latency.
    pub fn delay_message(mut self, from: usize, to: usize, nth: u64, extra_secs: f64) -> Self {
        assert!(extra_secs >= 0.0, "negative delay");
        self.delays.insert((from, to, nth), extra_secs);
        self
    }

    /// Crash `rank` when it begins its `k`-th (0-based) communication
    /// op. A dropped message scheduled on the same edge still applies to
    /// messages the rank sent before crashing.
    pub fn crash_rank(mut self, rank: usize, op: u64) -> Self {
        self.crashes.insert(rank, op);
        self
    }

    /// Draw a plan from a seed for a `procs`-rank universe, bounded by
    /// `spec`. Deterministic: same `(seed, procs, spec)` — same plan.
    pub fn seeded(seed: u64, procs: usize, spec: &FaultSpec) -> Self {
        let mut plan = Self::new();
        if procs < 2 {
            return plan;
        }
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(procs as u64),
        );
        let edge = |rng: &mut StdRng| {
            let from = rng.random_range(0..procs);
            let mut to = rng.random_range(0..procs - 1);
            if to >= from {
                to += 1;
            }
            (from, to)
        };
        if spec.max_drops > 0 {
            for _ in 0..rng.random_range(0..=spec.max_drops) {
                let (from, to) = edge(&mut rng);
                let nth = rng.random_range(0..spec.edge_horizon.max(1));
                plan = plan.drop_message(from, to, nth);
            }
        }
        if spec.max_delays > 0 {
            for _ in 0..rng.random_range(0..=spec.max_delays) {
                let (from, to) = edge(&mut rng);
                let nth = rng.random_range(0..spec.edge_horizon.max(1));
                let extra = spec.delay_secs * (0.5 + 1.5 * rng.random_unit());
                plan = plan.delay_message(from, to, nth, extra);
            }
        }
        if spec.max_crashes > 0 {
            for _ in 0..rng.random_range(0..=spec.max_crashes) {
                let rank = rng.random_range(0..procs);
                let op = rng.random_range(0..spec.op_horizon.max(1));
                plan = plan.crash_rank(rank, op);
            }
        }
        plan
    }

    /// Is the `nth` message on `from -> to` scheduled to be dropped?
    pub(crate) fn is_dropped(&self, from: usize, to: usize, nth: u64) -> bool {
        self.drops.contains(&(from, to, nth))
    }

    /// Extra arrival latency for the `nth` message on `from -> to`.
    pub(crate) fn delay(&self, from: usize, to: usize, nth: u64) -> Option<f64> {
        self.delays.get(&(from, to, nth)).copied()
    }

    /// The op index at which `rank` crashes, if scheduled.
    pub(crate) fn crash_op(&self, rank: usize) -> Option<u64> {
        self.crashes.get(&rank).copied()
    }

    /// Number of scheduled faults by kind: `(drops, delays, crashes)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.drops.len(), self.delays.len(), self.crashes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let spec = FaultSpec::default();
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 4, &spec);
            let b = FaultPlan::seeded(seed, 4, &spec);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn seeded_sweep_includes_faulty_and_fault_free_plans() {
        let spec = FaultSpec::default();
        let plans: Vec<_> = (0..64).map(|s| FaultPlan::seeded(s, 4, &spec)).collect();
        assert!(plans.iter().any(|p| p.is_empty()), "no fault-free seed");
        assert!(plans.iter().any(|p| !p.is_empty()), "no faulty seed");
        let (d, l, c) = plans.iter().fold((0, 0, 0), |acc, p| {
            let (d, l, c) = p.counts();
            (acc.0 + d, acc.1 + l, acc.2 + c)
        });
        assert!(d > 0 && l > 0 && c > 0, "sweep missing a fault kind");
    }

    #[test]
    fn seeded_respects_spec_bounds() {
        let spec = FaultSpec {
            max_drops: 1,
            max_delays: 0,
            max_crashes: 0,
            ..FaultSpec::default()
        };
        for seed in 0..64 {
            let (d, l, c) = FaultPlan::seeded(seed, 8, &spec).counts();
            assert!(d <= 1 && l == 0 && c == 0, "seed {seed}: {d}/{l}/{c}");
        }
    }

    #[test]
    fn single_rank_universe_gets_no_faults() {
        let spec = FaultSpec::default();
        for seed in 0..16 {
            assert!(FaultPlan::seeded(seed, 1, &spec).is_empty());
        }
    }

    #[test]
    fn builders_register_queries() {
        let plan = FaultPlan::new()
            .drop_message(0, 1, 2)
            .delay_message(1, 0, 0, 0.5)
            .crash_rank(2, 7);
        assert!(plan.is_dropped(0, 1, 2));
        assert!(!plan.is_dropped(0, 1, 3));
        assert_eq!(plan.delay(1, 0, 0), Some(0.5));
        assert_eq!(plan.delay(0, 1, 0), None);
        assert_eq!(plan.crash_op(2), Some(7));
        assert_eq!(plan.crash_op(0), None);
        assert_eq!(plan.counts(), (1, 1, 1));
    }

    #[test]
    fn error_display_is_descriptive() {
        let t = CommError::Timeout { from: 3, tag: 9 };
        assert!(t.to_string().contains("src=3"));
        let p = CommError::PeerCrashed { from: 1 };
        assert!(p.to_string().contains("rank 1"));
        let c = CommError::Crashed { rank: 2, op: 5 };
        assert!(c.to_string().contains("op 5"));
    }
}
