//! The LogGP-style cost model driving the simulated clocks.

/// Cost model: per-message latency, per-word transfer time and per-flop
/// compute time.
///
/// All times are in seconds; "word" means one matrix element (the
/// simulator is generic over the scalar, so a word is 4 bytes for `f32`
/// runs and 8 for `f64` — the default constants assume 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency `alpha` (seconds): software + network stack.
    pub alpha: f64,
    /// Per-word inverse bandwidth `beta` (seconds/word).
    pub beta: f64,
    /// Seconds per floating-point operation of the local kernels.
    pub flop_time: f64,
}

impl CostModel {
    /// Calibrated to the paper's hardware class: Xeon E5-2630v3 cores at
    /// 2.4 GHz (~38.4 peak DP GFLOPs/core), blocked kernels at ~25%
    /// efficiency, 10 GbE-class interconnect (alpha = 25 us,
    /// beta = 0.8 ns/byte = 6.4 ns per f64 word).
    pub fn terastat() -> Self {
        Self {
            alpha: 25e-6,
            beta: 6.4e-9,
            flop_time: 1.0 / 9.6e9,
        }
    }

    /// Zero-cost model: clocks stay at 0; useful for functional tests.
    pub fn zero() -> Self {
        Self {
            alpha: 0.0,
            beta: 0.0,
            flop_time: 0.0,
        }
    }

    /// A model with explicit parameters.
    ///
    /// # Panics
    /// If any parameter is negative or not finite.
    pub fn new(alpha: f64, beta: f64, flop_time: f64) -> Self {
        for (name, v) in [("alpha", alpha), ("beta", beta), ("flop_time", flop_time)] {
            assert!(
                v.is_finite() && v >= 0.0,
                "CostModel {name} must be finite and >= 0, got {v}"
            );
        }
        Self {
            alpha,
            beta,
            flop_time,
        }
    }

    /// Transfer time of a `words`-element payload (excluding the latency
    /// already charged to the sender).
    #[inline]
    pub fn transfer_time(&self, words: usize) -> f64 {
        self.alpha + self.beta * words as f64
    }

    /// Compute time of `flops` floating-point operations.
    #[inline]
    pub fn compute_time(&self, flops: f64) -> f64 {
        self.flop_time * flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terastat_orders_of_magnitude() {
        let m = CostModel::terastat();
        // A 1 MB (128 Ki f64 words) message takes under 10 ms but more
        // than the bare latency.
        let t = m.transfer_time(128 * 1024);
        assert!(t > m.alpha);
        assert!(t < 10e-3);
        // A GFLOP of compute takes ~0.1 s on one core.
        let c = m.compute_time(1e9);
        assert!(c > 0.05 && c < 0.5);
    }

    #[test]
    fn zero_model_is_free() {
        let m = CostModel::zero();
        assert_eq!(m.transfer_time(1_000_000), 0.0);
        assert_eq!(m.compute_time(1e12), 0.0);
    }

    #[test]
    fn bigger_messages_cost_more() {
        let m = CostModel::terastat();
        assert!(m.transfer_time(1000) < m.transfer_time(100_000));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_parameters_rejected() {
        let _ = CostModel::new(-1.0, 0.0, 0.0);
    }
}
