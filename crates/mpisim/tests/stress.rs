//! Stress and semantics tests for the message-passing simulator:
//! many-message pipelines, deterministic virtual time under load, and
//! causality of the simulated clocks.

use ata_mpisim::{run, CostModel};

#[test]
fn ring_pipeline_with_many_messages() {
    // Each rank forwards 200 tokens around a ring; every token must
    // arrive in order with its payload intact.
    let p = 6usize;
    let rounds = 200usize;
    let report = run(p, CostModel::zero(), move |comm| {
        let rank = comm.rank();
        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        let mut last = 0.0f64;
        for t in 0..rounds {
            if rank == 0 {
                comm.send(next, t as u64, vec![t as f64]);
                let v = comm.recv(prev, t as u64);
                last = v[0];
            } else {
                let v = comm.recv(prev, t as u64);
                comm.send(next, t as u64, v.clone());
                last = v[0];
            }
        }
        last
    });
    for (rank, &last) in report.results.iter().enumerate() {
        assert_eq!(last, (rounds - 1) as f64, "rank {rank}");
    }
    // Traffic: p senders x rounds messages.
    assert_eq!(report.total_msgs(), (p * rounds) as u64);
}

#[test]
fn virtual_time_is_deterministic_under_load() {
    // All-pairs exchange; virtual clocks must be identical across
    // repeated executions despite real thread nondeterminism.
    let p = 5usize;
    let mut baseline: Option<Vec<f64>> = None;
    for _ in 0..3 {
        let report = run(p, CostModel::new(1e-6, 1e-9, 0.0), move |comm| {
            let rank = comm.rank();
            for peer in 0..p {
                if peer != rank {
                    comm.send(peer, (rank * p + peer) as u64, vec![rank as f64; 64]);
                }
            }
            let mut acc = 0.0;
            for peer in 0..p {
                if peer != rank {
                    acc += comm.recv(peer, (peer * p + rank) as u64)[0];
                }
            }
            let _ = acc;
            comm.clock()
        });
        let clocks = report.results.clone();
        match &baseline {
            None => baseline = Some(clocks),
            Some(b) => assert_eq!(b, &clocks, "virtual time must be schedule-independent"),
        }
    }
}

#[test]
fn clock_causality_chain() {
    // A chain of dependent messages: each hop's receive time must be at
    // least the sender's send time plus transfer, so clocks are
    // monotone along the chain.
    let p = 8usize;
    let model = CostModel::new(1e-3, 0.0, 0.0); // 1 ms latency per hop
    let report = run(p, model, move |comm| {
        let rank = comm.rank();
        if rank == 0 {
            comm.send(1, 1, vec![0.0f64]);
            comm.clock()
        } else {
            let _ = comm.recv(rank - 1, rank as u64);
            if rank + 1 < p {
                comm.send(rank + 1, (rank + 1) as u64, vec![0.0f64]);
            }
            comm.clock()
        }
    });
    // Rank k has waited for k hops of >= 1 ms each.
    for (rank, &clock) in report.results.iter().enumerate().skip(1) {
        assert!(
            clock >= rank as f64 * 1e-3 - 1e-12,
            "rank {rank} clock {clock} violates causality"
        );
        assert!(
            clock >= report.results[rank - 1] - 1e-9,
            "monotone along the chain"
        );
    }
}

#[test]
fn large_payload_counts_exact_words() {
    let words = 100_000usize;
    let report = run(2, CostModel::zero(), move |comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, vec![1.5f64; words]);
        } else {
            let v = comm.recv(0, 1);
            assert_eq!(v.len(), words);
            assert!(v.iter().all(|&x| x == 1.5));
        }
    });
    assert_eq!(report.metrics[0].words_sent, words as u64);
    assert_eq!(report.metrics[1].words_sent, 0);
}

#[test]
fn interleaved_tags_from_same_sender_preserve_fifo_per_tag() {
    let report = run(2, CostModel::zero(), |comm| {
        if comm.rank() == 0 {
            // Two logical streams interleaved on the wire.
            for i in 0..50u64 {
                comm.send(1, 100, vec![i as f64]);
                comm.send(1, 200, vec![-(i as f64)]);
            }
            vec![]
        } else {
            let mut even = Vec::new();
            let mut odd = Vec::new();
            // Drain stream 200 first, then 100 — order must hold per tag.
            for _ in 0..50 {
                odd.push(comm.recv(0, 200)[0]);
            }
            for _ in 0..50 {
                even.push(comm.recv(0, 100)[0]);
            }
            even.extend(odd);
            even
        }
    });
    let v = &report.results[1];
    for i in 0..50 {
        assert_eq!(v[i], i as f64, "tag-100 stream out of order");
        assert_eq!(v[50 + i], -(i as f64), "tag-200 stream out of order");
    }
}
