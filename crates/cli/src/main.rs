//! `ata` — command-line front end for the AtA library.
//!
//! ```text
//! ata gen    --rows M --cols N [--seed S] --out FILE        generate a random matrix
//! ata gram   --input FILE --out FILE [--threads T]          C = A^T A (full symmetric)
//!            [--algo ata|ata-s|ata-d|syrk|naive] [--cache-words W]
//!            [--strassen classic|winograd] [--ranks R] [--repeat K]
//!            [--wire packed|dense]
//! ata stream --input FILE --out FILE [--chunk R]            streaming Gram over row chunks
//!            [--decay B] [--threads T] [--cache-words W]
//! ata solve  --input FILE --out FILE [--rhs FILE]           online normal-equations solve
//!            [--lambda L] [--chunk R] [--threads T]         (streamed rank-k factor updates)
//! ata batch  --inputs F1,F2,... --out-dir DIR [--threads T] batched small-gram serving
//! ata shard  [--shards P] [--jobs J] [--rows M] [--cols N]  sharded serving flood demo
//!            [--split-words W] [--poison 1] [--seed S]
//! ata chaos  [--seeds N] [--jobs J] [--shards P]            chaos drill: seeded fault sweep
//!            [--rows M] [--cols N] [--budget R] [--seed S0]
//! ata verify --input FILE [--threads T]                     AtA vs naive oracle
//! ata info   --input FILE                                   shape and norms
//! ata calibrate [--quick 1]                                 measure kernel tuning table
//! ```
//!
//! All AtA variants run through one [`AtaContext`]: `--threads` selects
//! the shared-memory backend, `--algo ata-d --ranks R` the simulated
//! distributed one (`--wire packed|dense` picks the §4.3.1 retrieval
//! encoding; packed is the default). `--repeat K` executes the plan `K`
//! times (a serving loop) and reports per-call time, demonstrating the
//! plan-reuse amortization.
//!
//! `ata stream` replays a file as a row-chunk stream through a
//! [`GramAccumulator`] (never holding more than one chunk plus the
//! `n x n` accumulator); `ata solve` streams the same way through a
//! [`ata::FactoredGram`] and answers `(AᵀA + λI) x = Aᵀb` from the
//! live factor; `ata batch` executes many independent gram problems as
//! one [`ata::BatchPlan`] dispatch across the worker pool.
//!
//! Files are CSV (`.csv`) or the compact binary `.atm` format, chosen by
//! extension. All computation is `f64`.

#![forbid(unsafe_code)]

use ata::shard::{JobError, RetryPolicy, ShardedServiceBuilder, SplitChaos};
use ata::{AtaContext, Backend, GramAccumulator, ManualClock, Output, WireFormat};
use ata_kernels::syrk_ln;
use ata_mat::{gen, io, reference, Matrix};
use ata_mpisim::CostModel;
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::process::ExitCode;

struct Args {
    kv: HashMap<String, String>,
}

impl Args {
    fn parse(rest: &[String]) -> Result<Self, String> {
        let mut kv = HashMap::new();
        let mut it = rest.iter();
        while let Some(k) = it.next() {
            let key = k
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --key, got '{k}'"))?;
            let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            kv.insert(key.to_string(), v.clone());
        }
        Ok(Self { kv })
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.kv
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.kv.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// Positive integer argument: the zero case is rejected in parsing,
    /// so the invariant reaches the API as a [`NonZeroUsize`].
    fn nonzero(&self, key: &str, default: NonZeroUsize) -> Result<NonZeroUsize, String> {
        match self.kv.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<NonZeroUsize>()
                .map_err(|_| format!("--{key} expects a positive integer, got '{v}'")),
        }
    }

    fn required_usize(&self, key: &str) -> Result<usize, String> {
        self.required(key)?
            .parse()
            .map_err(|_| format!("--{key} expects an integer"))
    }

    fn str_or(&self, key: &str, default: &'static str) -> String {
        self.kv
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

const ONE: NonZeroUsize = NonZeroUsize::MIN;

/// Build the execution context from the common flags. `--algo ata-d`
/// selects the simulated-distributed backend (`--ranks`, default 4);
/// otherwise `--threads` > 1 selects the shared-memory backend.
fn context(args: &Args, algo: &str) -> Result<AtaContext, String> {
    let mut b = AtaContext::builder();
    // --wire only affects the distributed backend; reject it elsewhere
    // instead of silently ignoring it (or a typo'd value).
    let wire = match args.kv.get("wire").map(String::as_str) {
        None => None,
        Some("packed") => Some(WireFormat::SymPacked),
        Some("dense") => Some(WireFormat::Dense),
        Some(other) => return Err(format!("unknown --wire '{other}' (packed | dense)")),
    };
    if wire.is_some() && algo != "ata-d" {
        return Err("--wire applies only to --algo ata-d".to_string());
    }
    if algo == "ata-d" {
        let ranks = args.nonzero("ranks", NonZeroUsize::new(4).expect("4 > 0"))?;
        b = b.backend(Backend::SimulatedDist {
            ranks,
            loggp: CostModel::terastat(),
        });
        b = b.wire(wire.unwrap_or(WireFormat::SymPacked));
    } else {
        let threads = args.nonzero("threads", ONE)?;
        if threads.get() > 1 {
            b = b.backend(Backend::Shared { threads });
        }
    }
    if let Some(w) = args.kv.get("cache-words") {
        let w: usize = w
            .parse()
            .map_err(|_| "--cache-words expects an integer".to_string())?;
        b = b.cache_words(w);
    }
    match args.str_or("strassen", "classic").as_str() {
        "classic" => {}
        "winograd" => b = b.winograd(),
        other => return Err(format!("unknown --strassen '{other}' (classic | winograd)")),
    }
    Ok(b.build())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let rows = args.required_usize("rows")?;
    let cols = args.required_usize("cols")?;
    let seed = args.usize("seed", 42)? as u64;
    let out = args.required("out")?;
    let m = gen::standard::<f64>(seed, rows, cols);
    io::save(&m, out).map_err(|e| e.to_string())?;
    println!("wrote {rows}x{cols} matrix (seed {seed}) to {out}");
    Ok(())
}

fn cmd_gram(args: &Args) -> Result<(), String> {
    let input = args.required("input")?;
    let out = args.required("out")?;
    let algo = args.str_or("algo", "ata");
    let repeat = args.nonzero("repeat", ONE)?.get();
    let a: Matrix<f64> = io::load(input).map_err(|e| e.to_string())?;
    let (m, n) = a.shape();

    let t0 = std::time::Instant::now();
    let g = match algo.as_str() {
        "ata" | "ata-s" | "ata-d" => {
            // Plan once, execute `repeat` times — the context API's
            // serving-loop shape.
            let ctx = context(args, &algo)?;
            let plan = ctx.plan_with::<f64>(m, n, Output::Gram);
            let mut c = Matrix::<f64>::zeros(n, n);
            for _ in 0..repeat {
                plan.execute_into(a.as_ref(), &mut c.as_mut());
            }
            c
        }
        "syrk" => {
            let mut c = Matrix::<f64>::zeros(n, n);
            for _ in 0..repeat {
                c.as_mut().fill_zero();
                syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
            }
            c.mirror_lower_to_upper();
            c
        }
        "naive" => {
            let mut g = reference::gram(a.as_ref());
            for _ in 1..repeat {
                g = reference::gram(a.as_ref());
            }
            g
        }
        other => {
            return Err(format!(
                "unknown --algo '{other}' (ata | ata-s | ata-d | syrk | naive)"
            ))
        }
    };
    let dt = t0.elapsed().as_secs_f64() / repeat as f64;
    io::save(&g, out).map_err(|e| e.to_string())?;
    println!("A: {m}x{n}; C = A^T A ({n}x{n}) via {algo} in {dt:.3}s/call (x{repeat}) -> {out}");
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let input = args.required("input")?;
    let ctx = context(args, &args.str_or("algo", "ata"))?;
    let a: Matrix<f64> = io::load(input).map_err(|e| e.to_string())?;
    let (m, n) = a.shape();
    let fast = ctx.gram(a.as_ref());
    let slow = reference::gram(a.as_ref());
    let diff = fast.max_abs_diff(&slow);
    let tol = ata_mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
    println!("max |AtA - naive| = {diff:.3e} (tolerance {tol:.3e})");
    if diff <= tol {
        println!("VERIFIED");
        Ok(())
    } else {
        Err("verification FAILED".to_string())
    }
}

/// Replay a matrix file as a stream of row chunks through a
/// [`GramAccumulator`], as a long-running ingest pipeline would; only
/// one chunk plus the `n x n` accumulator is ever in play.
fn cmd_stream(args: &Args) -> Result<(), String> {
    let input = args.required("input")?;
    let out = args.required("out")?;
    let a: Matrix<f64> = io::load(input).map_err(|e| e.to_string())?;
    let (m, n) = a.shape();
    let chunk = args
        .nonzero("chunk", NonZeroUsize::new(256).expect("256 > 0"))?
        .get();
    let decay = match args.kv.get("decay") {
        None => None,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("--decay expects a number, got '{v}'"))?,
        ),
    };
    let ctx = context(args, "ata")?;
    let t0 = std::time::Instant::now();
    let mut acc: GramAccumulator<f64> = ctx.gram_accumulator(n);
    let mut r0 = 0usize;
    while r0 < m {
        let r1 = (r0 + chunk).min(m);
        if let Some(beta) = decay {
            acc.decay(beta);
        }
        acc.push(a.as_ref().block(r0, r1, 0, n));
        r0 = r1;
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "streamed {m}x{n} in {} chunks of <= {chunk} rows ({} syrk-direct, {} strassen) in {dt:.3}s",
        acc.pushes(),
        acc.thin_pushes(),
        acc.tall_pushes()
    );
    let g = acc.finish().into_dense();
    io::save(&g, out).map_err(|e| e.to_string())?;
    println!("C = A^T A ({n}x{n}) -> {out}");
    Ok(())
}

/// Stream `A` through the factored tier ([`ata::FactoredGram`]) and
/// solve the normal equations `(AᵀA + λI) x = Aᵀ b` online: row chunks
/// fold into the Gram mass *and* its live `L D Lᵀ` factor by rank-k
/// sweeps, so the final solve is an `O(n²)` substitution, not a
/// refactorization.
fn cmd_solve(args: &Args) -> Result<(), String> {
    let input = args.required("input")?;
    let out = args.required("out")?;
    let a: Matrix<f64> = io::load(input).map_err(|e| e.to_string())?;
    let (m, n) = a.shape();
    let chunk = args
        .nonzero("chunk", NonZeroUsize::new(64).expect("64 > 0"))?
        .get();
    let lambda = match args.kv.get("lambda") {
        None => 0.0,
        Some(v) => {
            let l: f64 = v
                .parse()
                .map_err(|_| format!("--lambda expects a number, got '{v}'"))?;
            if l < 0.0 {
                return Err(format!("--lambda must be non-negative, got {l}"));
            }
            l
        }
    };
    let b: Vec<f64> = match args.kv.get("rhs") {
        Some(path) => {
            let rhs: Matrix<f64> = io::load(path).map_err(|e| e.to_string())?;
            if rhs.rows() * rhs.cols() != m || rhs.rows().min(rhs.cols()) != 1 {
                return Err(format!(
                    "--rhs must be a length-{m} vector to match {input}, got {}x{}",
                    rhs.rows(),
                    rhs.cols()
                ));
            }
            (0..m)
                .map(|i| {
                    if rhs.cols() == 1 {
                        rhs[(i, 0)]
                    } else {
                        rhs[(0, i)]
                    }
                })
                .collect()
        }
        None => vec![1.0; m],
    };
    let ctx = context(args, "ata")?;
    let t0 = std::time::Instant::now();
    let mut fg = ctx.factored_gram::<f64>(n);
    let mut atb = vec![0.0f64; n];
    let mut r0 = 0usize;
    while r0 < m {
        let r1 = (r0 + chunk).min(m);
        let block = a.as_ref().block(r0, r1, 0, n);
        fg.push(block);
        for (r, &bv) in (r0..r1).zip(&b[r0..r1]) {
            for (j, s) in atb.iter_mut().enumerate() {
                *s += a[(r, j)] * bv;
            }
        }
        r0 = r1;
    }
    let x = if lambda > 0.0 {
        fg.ridge(lambda, &atb)
    } else {
        fg.solve(&atb)
    }
    .map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "solved {m}x{n} normal equations (lambda={lambda}) in {dt:.3}s: \
         {} rank-k factor sweeps, {} refactor(s)",
        fg.factor_updates(),
        fg.factor_refactors()
    );
    let mut xm = Matrix::<f64>::zeros(n, 1);
    for (i, v) in x.iter().enumerate() {
        xm[(i, 0)] = *v;
    }
    io::save(&xm, out).map_err(|e| e.to_string())?;
    println!("x ({n}x1) -> {out}");
    Ok(())
}

/// Execute many independent gram problems as one batched dispatch
/// across the context's worker pool (one problem per worker).
fn cmd_batch(args: &Args) -> Result<(), String> {
    let inputs_arg = args.required("inputs")?;
    let out_dir = args.required("out-dir")?;
    let paths: Vec<&str> = inputs_arg.split(',').filter(|s| !s.is_empty()).collect();
    if paths.is_empty() {
        return Err("--inputs needs at least one file".to_string());
    }
    let mats: Vec<Matrix<f64>> = paths
        .iter()
        .map(|p| io::load(p).map_err(|e| format!("{p}: {e}")))
        .collect::<Result<_, _>>()?;
    let ctx = context(args, "ata")?;
    let shapes: Vec<(usize, usize)> = mats.iter().map(|a| a.shape()).collect();
    let t0 = std::time::Instant::now();
    let batch = ctx.batch_plan::<f64>(&shapes, Output::Gram);
    let refs: Vec<_> = mats.iter().map(|a| a.as_ref()).collect();
    let outs = batch.execute_batch(&refs);
    let dt = t0.elapsed().as_secs_f64();
    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    for (i, (path, out)) in paths.iter().zip(outs).enumerate() {
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("input");
        let dest = format!("{out_dir}/{stem}_gram_{i}.csv");
        io::save(&out.into_dense(), &dest).map_err(|e| e.to_string())?;
    }
    println!(
        "batched {} grams in {dt:.3}s ({:.1} problems/s, plan cache: {} hits / {} misses) -> {out_dir}",
        paths.len(),
        paths.len() as f64 / dt.max(1e-12),
        ctx.plan_cache_hits(),
        ctx.plan_cache_misses()
    );
    Ok(())
}

/// Flood the sharded serving front door (`ata::shard`) with a mixed
/// workload: problem heights cycle through 1x..4x `--rows`, so with a
/// suitable `--split-words` threshold some problems run whole on one
/// rank-shard and some split across all ranks via AtA-D. Every answer
/// is verified against the naive oracle, and the summary reconciles the
/// traffic predictor's quoted words against the simulator's counters
/// (bit-exact by construction). `--poison 1` injects a shard failure
/// mid-flood to demonstrate requeue: the flood must still verify.
fn cmd_shard(args: &Args) -> Result<(), String> {
    let shards = args
        .nonzero("shards", NonZeroUsize::new(4).expect("4 > 0"))?
        .get();
    let jobs = args
        .nonzero("jobs", NonZeroUsize::new(16).expect("16 > 0"))?
        .get();
    let rows = args
        .nonzero("rows", NonZeroUsize::new(64).expect("64 > 0"))?
        .get();
    let cols = args
        .nonzero("cols", NonZeroUsize::new(32).expect("32 > 0"))?
        .get();
    let split_words = args.usize("split-words", 8 * 1024)?;
    let poison = args.usize("poison", 0)? != 0;
    let seed = args.usize("seed", 42)? as u64;
    if poison && shards < 3 {
        return Err("--poison needs --shards >= 3 (a poison can kill two shards)".to_string());
    }
    let ctx = context(args, "ata")?;
    let svc = ShardedServiceBuilder::new(&ctx)
        .shards(shards)
        .split_words(split_words)
        .build::<f64>();
    // Pre-flight the flood's largest shape, as an admission controller
    // would: quote() prices the AtA-D dispatch without running it.
    if let Some(q) = svc.quote(4 * rows, cols) {
        println!(
            "quote: {}x{cols} split over {shards} ranks moves {} words ({} into the root)",
            4 * rows,
            q.total_words,
            q.root_recv_words
        );
    }
    let inputs: Vec<Matrix<f64>> = (0..jobs)
        .map(|i| gen::standard::<f64>(seed + i as u64, rows * (1 + i % 4), cols))
        .collect();
    let t0 = std::time::Instant::now();
    let mut poison_handle = None;
    let mut handles = Vec::with_capacity(jobs);
    for (i, a) in inputs.iter().enumerate() {
        if poison && i == jobs / 2 {
            poison_handle = Some(svc.submit_poison());
        }
        handles.push(
            svc.submit(a.clone())
                .map_err(|e| format!("submit failed: {e:?}"))?,
        );
    }
    for (h, a) in handles.into_iter().zip(&inputs) {
        let (m, n) = a.shape();
        let g = h
            .wait()
            .map_err(|e| format!("job lost to shard failure: {e:?}"))?
            .into_dense();
        let tol = ata_mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
        if g.max_abs_diff(&reference::gram(a.as_ref())) > tol {
            return Err(format!("{m}x{n} result diverged from the oracle"));
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    if let Some(h) = poison_handle {
        match h.wait() {
            Err(JobError::Requeued { attempts }) => {
                println!("poison convicted after {attempts} panicked dispatches");
            }
            other => return Err(format!("poison must be convicted, got {other:?}")),
        }
    }
    let stats = svc.shutdown();
    println!(
        "served {jobs} problems in {dt:.3}s: {} whole-per-shard, {} split via AtA-D, all verified",
        stats.whole_jobs, stats.split_jobs
    );
    for (i, s) in stats.per_shard.iter().enumerate() {
        println!(
            "  shard {i}: {} jobs in {} batches, {} requeued{}",
            s.jobs,
            s.batches,
            s.requeues,
            if s.dead { ", DEAD" } else { "" }
        );
    }
    println!(
        "split traffic: predicted {} words ({} root-recv), simulated {} ({}) — {}",
        stats.predicted_split_words,
        stats.predicted_root_recv_words,
        stats.simulated_split_words,
        stats.simulated_root_recv_words,
        if stats.predicted_split_words == stats.simulated_split_words
            && stats.predicted_root_recv_words == stats.simulated_root_recv_words
        {
            "bit-exact"
        } else {
            "MISMATCH"
        }
    );
    Ok(())
}

/// Chaos drill over the sharded serving tier: sweep deterministic
/// seeded fault schedules (message drops, delays, rank crashes) through
/// the AtA-D split lane and check the chaos contract on every one —
/// every accepted job completes with a bit-correct result (split,
/// degraded to shared memory, or whole on an unaffected shard) or a
/// typed error; the service never hangs and never answers wrong.
/// Retry backoff runs on a manual clock, so seconds of modeled backoff
/// cost no wall time and the sweep replays identically. Exits nonzero
/// on the first violated invariant.
fn cmd_chaos(args: &Args) -> Result<(), String> {
    let seeds = args
        .nonzero("seeds", NonZeroUsize::new(8).expect("8 > 0"))?
        .get();
    let jobs = args
        .nonzero("jobs", NonZeroUsize::new(8).expect("8 > 0"))?
        .get();
    let rows = args
        .nonzero("rows", NonZeroUsize::new(128).expect("128 > 0"))?
        .get();
    let cols = args
        .nonzero("cols", NonZeroUsize::new(32).expect("32 > 0"))?
        .get();
    let budget = args.usize("budget", 1)?;
    let seed0 = args.usize("seed", 0)? as u64;
    // Without --shards the sweep cycles P through {2, 4, 8}, the
    // paper's distributed experiment sizes.
    let fixed_shards = match args.kv.get("shards") {
        None => None,
        Some(_) => Some(args.nonzero("shards", NonZeroUsize::MIN)?.get()),
    };
    let ctx = context(args, "ata")?;
    let (mut split, mut degraded, mut retries, mut whole) = (0usize, 0usize, 0usize, 0usize);
    for s in 0..seeds {
        let shards = fixed_shards.unwrap_or([2usize, 4, 8][s % 3]);
        let seed = seed0 + s as u64;
        let svc = ShardedServiceBuilder::new(&ctx)
            .shards(shards)
            .split_words(rows * cols)
            .clock(std::sync::Arc::new(ManualClock::new()))
            .split_retry(RetryPolicy {
                budget,
                ..RetryPolicy::default()
            })
            .split_chaos(SplitChaos::new(seed).recv_deadline(0.5))
            .build::<f64>();
        // Mixed flood: even jobs are large (split lane, the fault
        // path), odd jobs small (whole lane, must stay unaffected).
        let inputs: Vec<Matrix<f64>> = (0..jobs)
            .map(|i| {
                let m = if i % 2 == 0 { rows } else { rows / 2 };
                gen::standard::<f64>(seed.wrapping_mul(1000) + i as u64, m.max(1), cols)
            })
            .collect();
        let large = inputs.iter().filter(|a| a.rows() == rows).count();
        let handles: Vec<_> = inputs
            .iter()
            .map(|a| {
                svc.submit(a.clone())
                    .map_err(|e| format!("seed {seed}: submit failed: {e:?}"))
            })
            .collect::<Result<_, _>>()?;
        for (h, a) in handles.into_iter().zip(&inputs) {
            let (m, n) = a.shape();
            let g = h
                .wait()
                .map_err(|e| format!("seed {seed}: accepted job failed: {e}"))?
                .into_dense();
            let tol = ata_mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
            if g.max_abs_diff(&reference::gram(a.as_ref())) > tol {
                return Err(format!(
                    "seed {seed}: {m}x{n} result diverged from the oracle under faults"
                ));
            }
        }
        let stats = svc.shutdown();
        if stats.completed_jobs() != jobs || stats.failed_jobs != 0 {
            return Err(format!(
                "seed {seed}: accounting broke: {} completed + {} failed of {jobs} accepted",
                stats.completed_jobs(),
                stats.failed_jobs
            ));
        }
        if stats.split_jobs + stats.degraded_jobs != large {
            return Err(format!(
                "seed {seed}: split lane leaked jobs: {} split + {} degraded != {large}",
                stats.split_jobs, stats.degraded_jobs
            ));
        }
        if stats.predicted_split_words != stats.simulated_split_words {
            return Err(format!(
                "seed {seed}: clean-dispatch traffic not bit-exact: predicted {} simulated {}",
                stats.predicted_split_words, stats.simulated_split_words
            ));
        }
        println!(
            "seed {seed} (P={shards}): {} split, {} degraded, {} faulted attempts, {} whole — verified",
            stats.split_jobs, stats.degraded_jobs, stats.split_retries, stats.whole_jobs
        );
        split += stats.split_jobs;
        degraded += stats.degraded_jobs;
        retries += stats.split_retries;
        whole += stats.whole_jobs;
    }
    println!(
        "chaos: {seeds} seeded schedules x {jobs} jobs: {split} split, {degraded} degraded, \
         {whole} whole, {retries} faulted attempts retried or degraded, 0 wrong answers, 0 hangs"
    );
    Ok(())
}

/// Run the kernel calibration sweeps and print the measured table in
/// the shape of `ata_kernels::calibrate`'s baked records, so new
/// hardware can be re-tuned by pasting the output over the constants
/// (or exporting `ATA_KERNEL_PARAMS`).
fn cmd_calibrate(args: &Args) -> Result<(), String> {
    let quick = args.usize("quick", 0)? != 0;
    println!(
        "calibrating packed-kernel parameters ({} sweep, single thread)...",
        if quick { "quick" } else { "full" }
    );
    println!(
        "detected isa: {} (force a path with ATA_MICRO=intrinsic|portable|scalar)",
        ata_kernels::simd::detected().name()
    );
    let f64_path = ata_kernels::micro::micro_path_for::<f64>();
    let f32_path = ata_kernels::micro::micro_path_for::<f32>();
    let f64_t = ata_kernels::calibrate::measure::<f64>(quick);
    let f32_t = ata_kernels::calibrate::measure::<f32>(quick);
    for (name, path, menu, t) in [
        (
            "f64",
            f64_path,
            ata_kernels::calibrate::menu_for::<f64>(),
            f64_t,
        ),
        (
            "f32",
            f32_path,
            ata_kernels::calibrate::menu_for::<f32>(),
            f32_t,
        ),
    ] {
        let k = t.kernel;
        println!(
            "{name} ({} path, {}-tile menu): mr={} nr={} kc={} mc={} nc={} base_words={} \
             micro_min_volume={}",
            path.name(),
            menu.len(),
            k.mr,
            k.nr,
            k.kc,
            k.mc,
            k.nc,
            t.base_words,
            t.micro_min_volume
        );
    }
    println!(
        "override per run with ATA_KERNEL_PARAMS=\"mr={},nr={},kc={},mc={},nc={},words={},volume={}\"",
        f64_t.kernel.mr,
        f64_t.kernel.nr,
        f64_t.kernel.kc,
        f64_t.kernel.mc,
        f64_t.kernel.nc,
        f64_t.base_words,
        f64_t.micro_min_volume
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let input = args.required("input")?;
    let a: Matrix<f64> = io::load(input).map_err(|e| e.to_string())?;
    let (m, n) = a.shape();
    println!("{input}: {m} x {n} (f64)");
    println!("  frobenius norm: {:.6e}", a.as_ref().frobenius());
    println!("  max |entry|:    {:.6e}", a.as_ref().max_abs());
    Ok(())
}

fn usage() -> String {
    "usage: ata <gen|gram|stream|solve|batch|shard|chaos|verify|info|calibrate|lint> [--key value ...]\n\
     \n  ata gen    --rows M --cols N [--seed S] --out FILE\
     \n  ata gram   --input FILE --out FILE [--threads T] [--repeat K]\
     \n             [--algo ata|ata-s|ata-d|syrk|naive] [--ranks R]\
     \n             [--wire packed|dense] [--cache-words W]\
     \n             [--strassen classic|winograd]\
     \n  ata stream --input FILE --out FILE [--chunk R] [--decay B]\
     \n             [--threads T] [--cache-words W]\
     \n  ata solve  --input FILE --out FILE [--rhs FILE] [--lambda L]\
     \n             [--chunk R] [--threads T] [--cache-words W]\
     \n  ata batch  --inputs F1,F2,... --out-dir DIR [--threads T]\
     \n  ata shard  [--shards P] [--jobs J] [--rows M] [--cols N]\
     \n             [--split-words W] [--poison 1] [--seed S]\
     \n  ata chaos  [--seeds N] [--jobs J] [--shards P] [--rows M]\
     \n             [--cols N] [--budget R] [--seed S0]\
     \n  ata verify --input FILE [--threads T]\
     \n  ata info   --input FILE\
     \n  ata calibrate [--quick 1]\
     \n  ata lint   [check|api] [--verify]"
        .to_string()
}

/// Passthrough to the in-repo static-analysis tool: `ata lint` runs the
/// repo lints plus the API snapshot verification (the same pair CI runs),
/// while `ata lint check` / `ata lint api [--verify]` select one half.
fn cmd_lint(argv: &[String]) -> Result<(), String> {
    let mut check = true;
    let mut api = true;
    let mut verify_flag = false;
    for a in argv {
        match a.as_str() {
            "check" => api = false,
            "api" => check = false,
            "--verify" => verify_flag = true,
            other => return Err(format!("unrecognised lint argument `{other}`\n{}", usage())),
        }
    }
    // Bare `ata lint` verifies (the CI pair); `ata lint api` regenerates
    // like `ata-lint api` does, unless `--verify` is passed back in.
    let verify = verify_flag || check;
    let root = lint_root()?;
    let mut findings = 0usize;
    if check {
        let diags = ata_lint::check(&root).map_err(|e| e.to_string())?;
        for d in &diags {
            println!("{d}");
        }
        findings += diags.len();
        if diags.is_empty() {
            println!("ata lint: check clean");
        }
    }
    if api {
        if verify {
            let problems = ata_lint::verify_api(&root).map_err(|e| e.to_string())?;
            for p in &problems {
                println!("{p}");
            }
            findings += problems.len();
            if problems.is_empty() {
                println!("ata lint: API snapshots match the sources");
            }
        } else {
            for path in ata_lint::write_api(&root).map_err(|e| e.to_string())? {
                println!("wrote {path}");
            }
        }
    }
    if findings == 0 {
        Ok(())
    } else {
        Err(format!(
            "ata lint: {findings} finding(s) — see `cargo run -p ata-lint` for details"
        ))
    }
}

/// Walk up from the current directory to the first `[workspace]` manifest.
fn lint_root() -> Result<std::path::PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file()
            && std::fs::read_to_string(&manifest)
                .map_err(|e| e.to_string())?
                .contains("[workspace]")
        {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".to_string());
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some(
            cmd @ ("gen" | "gram" | "stream" | "solve" | "batch" | "shard" | "chaos" | "verify"
            | "info" | "calibrate"),
        ) => Args::parse(&argv[1..]).and_then(|args| match cmd {
            "gen" => cmd_gen(&args),
            "gram" => cmd_gram(&args),
            "stream" => cmd_stream(&args),
            "solve" => cmd_solve(&args),
            "batch" => cmd_batch(&args),
            "shard" => cmd_shard(&args),
            "chaos" => cmd_chaos(&args),
            "verify" => cmd_verify(&args),
            "calibrate" => cmd_calibrate(&args),
            _ => cmd_info(&args),
        }),
        Some("lint") => cmd_lint(&argv[1..]),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>()).expect("parse")
    }

    #[test]
    fn arg_parsing() {
        let a = args(&["--rows", "8", "--out", "x.csv"]);
        assert_eq!(a.required_usize("rows").expect("rows"), 8);
        assert_eq!(a.required("out").expect("out"), "x.csv");
        assert!(a.required("cols").is_err());
        assert_eq!(a.usize("seed", 42).expect("default"), 42);
    }

    #[test]
    fn missing_value_is_an_error() {
        let r = Args::parse(&["--rows".to_string()]);
        assert!(r.is_err());
    }

    #[test]
    fn zero_threads_is_a_parse_error_not_a_panic() {
        let a = args(&["--threads", "0"]);
        let err = a.nonzero("threads", ONE).expect_err("0 must be rejected");
        assert!(err.contains("positive integer"), "got: {err}");
        // And the context builder reports it as a clean Err.
        assert!(context(&a, "ata").is_err());
    }

    #[test]
    fn negative_and_garbage_threads_rejected() {
        for bad in ["-1", "1.5", "lots"] {
            let a = args(&["--threads", bad]);
            assert!(a.nonzero("threads", ONE).is_err(), "--threads {bad}");
        }
        // Valid values still parse.
        assert_eq!(
            args(&["--threads", "8"]).nonzero("threads", ONE).unwrap(),
            NonZeroUsize::new(8).unwrap()
        );
    }

    #[test]
    fn end_to_end_gen_gram_verify() {
        let dir = std::env::temp_dir().join("ata_cli_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a_path = dir.join("a.atm").to_string_lossy().to_string();
        let g_path = dir.join("g.csv").to_string_lossy().to_string();

        cmd_gen(&args(&["--rows", "20", "--cols", "10", "--out", &a_path])).expect("gen");
        cmd_gram(&args(&[
            "--input",
            &a_path,
            "--out",
            &g_path,
            "--threads",
            "2",
        ]))
        .expect("gram");
        cmd_verify(&args(&["--input", &a_path])).expect("verify");
        cmd_info(&args(&["--input", &a_path])).expect("info");

        let g: Matrix<f64> = io::load(&g_path).expect("load gram");
        assert_eq!(g.shape(), (10, 10));
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn solve_matches_direct_normal_equations() {
        let dir = std::env::temp_dir().join("ata_cli_test_solve");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a_path = dir.join("a.csv").to_string_lossy().to_string();
        let b_path = dir.join("b.csv").to_string_lossy().to_string();
        let x_path = dir.join("x.csv").to_string_lossy().to_string();
        let (m, n) = (60usize, 12usize);
        cmd_gen(&args(&[
            "--rows",
            &m.to_string(),
            "--cols",
            &n.to_string(),
            "--out",
            &a_path,
            "--seed",
            "11",
        ]))
        .expect("gen");
        let a: Matrix<f64> = io::load(&a_path).expect("load a");
        let b = gen::standard::<f64>(12, m, 1);
        io::save(&b, &b_path).expect("save rhs");

        // Thin chunks so the factored tier actually sweeps.
        cmd_solve(&args(&[
            "--input", &a_path, "--rhs", &b_path, "--out", &x_path, "--chunk", "2", "--lambda",
            "0.5",
        ]))
        .expect("solve");
        let x: Matrix<f64> = io::load(&x_path).expect("load x");
        assert_eq!(x.shape(), (n, 1));

        // Reference: dense normal equations with the same shift.
        let mut g = reference::gram(a.as_ref());
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        let atb: Vec<f64> = (0..n)
            .map(|j| (0..m).map(|r| a[(r, j)] * b[(r, 0)]).sum())
            .collect();
        ata::linalg::cholesky_factor(&mut g).expect("SPD");
        let xr = ata::linalg::cholesky_solve(&g, &atb).expect("shape");
        for i in 0..n {
            assert!(
                (x[(i, 0)] - xr[i]).abs() <= 1e-8 * (1.0 + xr[i].abs()),
                "x[{i}] = {} vs reference {}",
                x[(i, 0)],
                xr[i]
            );
        }

        // A negative lambda is a clean CLI error, not a panic.
        assert!(cmd_solve(&args(&[
            "--input", &a_path, "--out", &x_path, "--lambda", "-1",
        ]))
        .is_err());
        // A wrong-length rhs is rejected with the shapes in the message.
        let short = gen::standard::<f64>(1, m - 1, 1);
        let short_path = dir.join("short.csv").to_string_lossy().to_string();
        io::save(&short, &short_path).expect("save short");
        let err = cmd_solve(&args(&[
            "--input",
            &a_path,
            "--rhs",
            &short_path,
            "--out",
            &x_path,
        ]))
        .expect_err("short rhs must be rejected");
        assert!(err.contains("length-60"), "got: {err}");
    }

    #[test]
    fn gram_algo_variants_agree() {
        let dir = std::env::temp_dir().join("ata_cli_test2");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a_path = dir.join("a.csv").to_string_lossy().to_string();
        cmd_gen(&args(&[
            "--rows", "16", "--cols", "8", "--out", &a_path, "--seed", "7",
        ]))
        .expect("gen");

        let mut results = Vec::new();
        for algo in ["ata", "ata-d", "syrk", "naive"] {
            let out = dir
                .join(format!("g_{algo}.csv"))
                .to_string_lossy()
                .to_string();
            cmd_gram(&args(&["--input", &a_path, "--out", &out, "--algo", algo])).expect("gram");
            results.push(io::load::<f64>(&out).expect("load"));
        }
        for (i, r) in results.iter().enumerate().skip(1) {
            assert!(results[0].max_abs_diff(r) < 1e-10, "variant {i} disagrees");
        }
    }

    #[test]
    fn wire_flag_selects_format_and_agrees() {
        let dir = std::env::temp_dir().join("ata_cli_test6");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a_path = dir.join("a.csv").to_string_lossy().to_string();
        cmd_gen(&args(&[
            "--rows", "24", "--cols", "16", "--out", &a_path, "--seed", "5",
        ]))
        .expect("gen");
        let mut results = Vec::new();
        for wire in ["packed", "dense"] {
            let out = dir
                .join(format!("g_{wire}.csv"))
                .to_string_lossy()
                .to_string();
            cmd_gram(&args(&[
                "--input", &a_path, "--out", &out, "--algo", "ata-d", "--ranks", "3", "--wire",
                wire,
            ]))
            .expect("gram");
            results.push(io::load::<f64>(&out).expect("load"));
        }
        assert_eq!(
            results[0].max_abs_diff(&results[1]),
            0.0,
            "wire formats must agree bit-for-bit"
        );
        // The builder surfaces the selection.
        let a = args(&["--wire", "dense"]);
        assert_eq!(
            context(&a, "ata-d").expect("context").wire(),
            WireFormat::Dense
        );
        assert!(context(&args(&["--wire", "zip"]), "ata-d").is_err());
        // No silent no-ops: --wire outside ata-d is an error, not a
        // quietly ignored flag.
        let err = context(&args(&["--wire", "packed"]), "ata").expect_err("must reject");
        assert!(err.contains("ata-d"), "got: {err}");
        assert!(context(&args(&["--wire", "zip"]), "ata").is_err());
    }

    #[test]
    fn repeated_gram_reuses_plan() {
        let dir = std::env::temp_dir().join("ata_cli_test5");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a_path = dir.join("a.csv").to_string_lossy().to_string();
        let g_path = dir.join("g.csv").to_string_lossy().to_string();
        cmd_gen(&args(&["--rows", "24", "--cols", "12", "--out", &a_path])).expect("gen");
        cmd_gram(&args(&[
            "--input",
            &a_path,
            "--out",
            &g_path,
            "--repeat",
            "5",
            "--threads",
            "2",
        ]))
        .expect("gram x5");
        let g: Matrix<f64> = io::load(&g_path).expect("load");
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn winograd_strassen_flag_agrees_with_classic() {
        let dir = std::env::temp_dir().join("ata_cli_test4");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a_path = dir.join("a.csv").to_string_lossy().to_string();
        cmd_gen(&args(&[
            "--rows", "40", "--cols", "24", "--out", &a_path, "--seed", "3",
        ]))
        .expect("gen");
        let g1 = dir.join("g1.csv").to_string_lossy().to_string();
        let g2 = dir.join("g2.csv").to_string_lossy().to_string();
        cmd_gram(&args(&[
            "--input",
            &a_path,
            "--out",
            &g1,
            "--cache-words",
            "64",
        ]))
        .expect("classic");
        cmd_gram(&args(&[
            "--input",
            &a_path,
            "--out",
            &g2,
            "--cache-words",
            "64",
            "--strassen",
            "winograd",
        ]))
        .expect("winograd");
        let ga: Matrix<f64> = io::load(&g1).expect("g1");
        let gb: Matrix<f64> = io::load(&g2).expect("g2");
        assert!(ga.max_abs_diff(&gb) < 1e-10);
        let bad = cmd_gram(&args(&[
            "--input",
            &a_path,
            "--out",
            &g2,
            "--strassen",
            "x",
        ]));
        assert!(bad.is_err());
    }

    #[test]
    fn stream_matches_one_shot_gram() {
        let dir = std::env::temp_dir().join("ata_cli_stream");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a_path = dir.join("a.csv").to_string_lossy().to_string();
        let g1 = dir.join("g_oneshot.csv").to_string_lossy().to_string();
        let g2 = dir.join("g_stream.csv").to_string_lossy().to_string();
        cmd_gen(&args(&[
            "--rows", "90", "--cols", "16", "--out", &a_path, "--seed", "9",
        ]))
        .expect("gen");
        cmd_gram(&args(&["--input", &a_path, "--out", &g1])).expect("gram");
        // Ragged tail on purpose: 90 rows in chunks of 32 -> 32+32+26.
        cmd_stream(&args(&["--input", &a_path, "--out", &g2, "--chunk", "32"])).expect("stream");
        let one: Matrix<f64> = io::load(&g1).expect("g1");
        let st: Matrix<f64> = io::load(&g2).expect("g2");
        assert!(one.max_abs_diff(&st) < 1e-10);
        assert!(st.is_symmetric(0.0));
        // Bad decay value is a clean error.
        assert!(cmd_stream(&args(&["--input", &a_path, "--out", &g2, "--decay", "x",])).is_err());
    }

    #[test]
    fn batch_writes_one_gram_per_input() {
        let dir = std::env::temp_dir().join("ata_cli_batch");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut paths = Vec::new();
        for i in 0..3 {
            let p = dir.join(format!("in{i}.csv")).to_string_lossy().to_string();
            cmd_gen(&args(&[
                "--rows",
                "24",
                "--cols",
                "12",
                "--seed",
                &i.to_string(),
                "--out",
                &p,
            ]))
            .expect("gen");
            paths.push(p);
        }
        let out_dir = dir.join("out").to_string_lossy().to_string();
        cmd_batch(&args(&[
            "--inputs",
            &paths.join(","),
            "--out-dir",
            &out_dir,
            "--threads",
            "2",
        ]))
        .expect("batch");
        for (i, p) in paths.iter().enumerate() {
            let a: Matrix<f64> = io::load(p).expect("in");
            let g: Matrix<f64> =
                io::load(format!("{out_dir}/in{i}_gram_{i}.csv")).expect("gram out");
            assert_eq!(g.shape(), (12, 12));
            assert!(g.max_abs_diff(&reference::gram(a.as_ref())) < 1e-10);
        }
        // Empty input list is a clean error.
        assert!(cmd_batch(&args(&["--inputs", "", "--out-dir", &out_dir])).is_err());
    }

    #[test]
    fn shard_flood_verifies_and_reconciles() {
        // Mixed flood: heights 24..96 at cols 16, threshold 1024 words,
        // so 24x16 = 384 runs whole and 96x16 = 1536 splits.
        cmd_shard(&args(&[
            "--shards",
            "4",
            "--jobs",
            "8",
            "--rows",
            "24",
            "--cols",
            "16",
            "--split-words",
            "1024",
        ]))
        .expect("shard flood");
    }

    #[test]
    fn shard_survives_an_injected_failure() {
        cmd_shard(&args(&[
            "--shards", "4", "--jobs", "6", "--rows", "16", "--cols", "8", "--poison", "1",
        ]))
        .expect("poisoned flood still verifies");
        // Too few shards to contain a poison is a clean error.
        assert!(cmd_shard(&args(&["--shards", "2", "--poison", "1"])).is_err());
    }

    #[test]
    fn unknown_algo_rejected() {
        let dir = std::env::temp_dir().join("ata_cli_test3");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a_path = dir.join("a.csv").to_string_lossy().to_string();
        cmd_gen(&args(&["--rows", "4", "--cols", "4", "--out", &a_path])).expect("gen");
        let r = cmd_gram(&args(&[
            "--input", &a_path, "--out", &a_path, "--algo", "magic",
        ]));
        assert!(r.is_err());
    }
}
