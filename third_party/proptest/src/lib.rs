//! Offline stand-in for the `proptest` crate (see
//! `third_party/README.md`).
//!
//! Implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`#[test] fn name(arg in strategy, ...)`),
//!   with the optional `#![proptest_config(..)]` header;
//! * [`strategy::Strategy`] for ranges (half-open and inclusive, ints and
//!   floats), tuples up to arity 4, and `prop_map` adapters;
//! * [`collection::vec`] and [`sample::select`];
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Sampling is deterministic: each test derives its RNG seed from an FNV
//! hash of its own name, so failures reproduce exactly across runs. There
//! is no shrinking — a failing case panics with the generated inputs in
//! scope (print them from the assertion message if needed).

pub mod test_runner {
    //! Config and RNG for generated test cases.

    use rand::rngs::StdRng;
    use rand::{RngCore, SampleRange, SeedableRng};

    /// Per-suite configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic per-test random source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG seeded from the test's name (FNV-1a).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Uniform sample from a range.
        pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample(&mut self.inner)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` with length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `proptest::sample::select`: uniform choice from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.sample(0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current generated case unless `cond` holds.
///
/// Works from any nesting depth inside the test body: [`proptest!`]
/// wraps each case in a closure, and this expands to an early `return`
/// from it — matching real proptest's reject-from-anywhere semantics
/// (a bare `continue` would instead target the nearest user loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0usize..10, y in -1.0f64..1.0) {
///         prop_assert!(x < 10 && y < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                // Each case runs in a closure so `prop_assume!` can
                // reject it with `return false` from any nesting depth.
                #[allow(clippy::redundant_closure_call)]
                let __ran = (|| -> bool {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng); )*
                    $body
                    true
                })();
                let _ = __ran;
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn squares() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0, z in 5i64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((5..=9).contains(&z));
        }

        #[test]
        fn tuples_and_map_compose(s in squares(), (a, b) in (0u32..10, 10u32..20)) {
            let r = (s as f64).sqrt().round() as u64;
            prop_assert_eq!(r * r, s);
            prop_assert!(a < 10 && (10..20).contains(&b));
        }

        #[test]
        fn vec_and_select_strategies(
            v in prop::collection::vec(0u64..512, 1..40),
            pick in prop::sample::select(vec![1usize, 2, 4, 8]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&x| x < 512));
            prop_assert!([1usize, 2, 4, 8].contains(&pick));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn assume_rejects_whole_case_from_nested_loop(x in 0u32..10) {
            let mut seen = 0;
            for _ in 0..3 {
                prop_assume!(x < 8);
                seen += 1;
            }
            // Reachable only when the assumption held: a `continue`-based
            // reject would fall through here with x >= 8 and fail.
            prop_assert!(x < 8);
            prop_assert_eq!(seen, 3);
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut r1 = TestRng::for_test("same-name");
        let mut r2 = TestRng::for_test("same-name");
        let s = 0u64..1_000_000;
        for _ in 0..64 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
