//! Offline stand-in for the `crossbeam` crate (see
//! `third_party/README.md`).
//!
//! Only `crossbeam::channel` is provided, as a thin façade over
//! `std::sync::mpsc`: since Rust 1.67 the std channel *is* the crossbeam
//! implementation, so semantics (unbounded MPSC, bounded/rendezvous
//! capacity, `try_send` backpressure, `recv_timeout`, disconnect
//! detection) match what the simulator and the serving front-end rely
//! on. Like crossbeam (and unlike raw `std::sync::mpsc`), both flavors
//! share one [`channel::Sender`] type, so queue capacity is a
//! construction-time policy instead of a type-level split.

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// Sending half (cloneable); unified over the unbounded and bounded
    /// flavors, as in crossbeam.
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Sender of an [`unbounded`] channel.
        Unbounded(mpsc::Sender<T>),
        /// Sender of a [`bounded`] channel.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; on a full bounded channel this blocks until
        /// space frees up. Fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value),
                Sender::Bounded(s) => s.send(value),
            }
        }

        /// Non-blocking enqueue: [`TrySendError::Full`] when a bounded
        /// channel is at capacity (the backpressure signal), never `Full`
        /// on an unbounded channel.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match self {
                Sender::Unbounded(s) => s
                    .send(value)
                    .map_err(|SendError(v)| TrySendError::Disconnected(v)),
                Sender::Bounded(s) => s.try_send(value),
            }
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender::Unbounded(s), Receiver(r))
    }

    /// Create a bounded channel holding at most `cap` in-flight
    /// messages (`cap = 0` is a rendezvous channel). A full channel
    /// blocks [`Sender::send`] and rejects [`Sender::try_send`] — the
    /// backpressure primitive of the serving front-end.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::sync_channel(cap);
        (Sender::Bounded(s), Receiver(r))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (s, r) = unbounded();
        s.send(5usize).unwrap();
        assert_eq!(r.recv().unwrap(), 5);
    }

    #[test]
    fn timeout_elapses_when_empty() {
        let (_s, r) = unbounded::<u8>();
        assert_eq!(
            r.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn clone_senders_feed_one_receiver() {
        let (s, r) = unbounded();
        let s2 = s.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || s.send(1u8).unwrap());
            scope.spawn(move || s2.send(2u8).unwrap());
        });
        let mut got = vec![r.recv().unwrap(), r.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn disconnect_is_detected() {
        let (s, r) = unbounded::<u8>();
        drop(s);
        assert_eq!(
            r.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_try_send_reports_full() {
        use super::channel::{bounded, TrySendError};
        let (s, r) = bounded::<u8>(2);
        s.try_send(1).expect("slot 1");
        s.try_send(2).expect("slot 2");
        assert!(matches!(s.try_send(3), Err(TrySendError::Full(3))));
        // Draining one frees a slot.
        assert_eq!(r.recv().unwrap(), 1);
        s.try_send(3).expect("slot freed");
        assert_eq!(r.recv().unwrap(), 2);
        assert_eq!(r.recv().unwrap(), 3);
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        use super::channel::bounded;
        let (s, r) = bounded::<u8>(1);
        s.send(1).expect("first fits");
        let sender = s.clone();
        let t = std::thread::spawn(move || sender.send(2).expect("unblocked by recv"));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(r.recv().unwrap(), 1);
        t.join().expect("sender thread");
        assert_eq!(r.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_disconnect_via_try_send() {
        use super::channel::{bounded, TrySendError};
        let (s, r) = bounded::<u8>(4);
        drop(r);
        assert!(matches!(s.try_send(9), Err(TrySendError::Disconnected(9))));
    }
}
