//! Offline stand-in for the `crossbeam` crate (see
//! `third_party/README.md`).
//!
//! Only `crossbeam::channel` is provided, as a thin façade over
//! `std::sync::mpsc`: since Rust 1.67 the std channel *is* the crossbeam
//! implementation, so semantics (unbounded MPSC, `recv_timeout`,
//! disconnect detection) match what the simulator relies on.

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (cloneable).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(s), Receiver(r))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (s, r) = unbounded();
        s.send(5usize).unwrap();
        assert_eq!(r.recv().unwrap(), 5);
    }

    #[test]
    fn timeout_elapses_when_empty() {
        let (_s, r) = unbounded::<u8>();
        assert_eq!(
            r.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn clone_senders_feed_one_receiver() {
        let (s, r) = unbounded();
        let s2 = s.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || s.send(1u8).unwrap());
            scope.spawn(move || s2.send(2u8).unwrap());
        });
        let mut got = vec![r.recv().unwrap(), r.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn disconnect_is_detected() {
        let (s, r) = unbounded::<u8>();
        drop(s);
        assert_eq!(
            r.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
