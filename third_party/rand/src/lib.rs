//! Offline stand-in for the `rand` crate (see `third_party/README.md`).
//!
//! Provides exactly what the workspace uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), the [`SeedableRng`] constructor trait and
//! the [`RngExt`] extension with `random_range` over the standard range
//! types. The generator is SplitMix64 — tiny, fast, and passes the
//! statistical bar for test-workload generation (it is *not* stream
//! compatible with crates.io `StdRng`, which the workspace never relies
//! on).

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
///
/// Implemented for half-open and inclusive ranges of the integer and
/// float types the workspace draws from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let lo = self.start as f64;
                let hi = self.end as f64;
                (lo + unit * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension methods every generator gets.
///
/// Named `RngExt` (not `Rng`) to make explicit that this is the vendored
/// stand-in's API, not crates.io `rand::Rng`.
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random_unit(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<R: RngCore> RngExt for R {}

/// The generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 (Steele, Lea & Flood 2014): the standard seeding
    /// generator — one 64-bit state word, full period, equidistributed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-3i64..5);
            assert!((-3..5).contains(&x));
            let y = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z = rng.random_range(10u32..=12);
            assert!((10..=12).contains(&z));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let u = rng.random_unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}
