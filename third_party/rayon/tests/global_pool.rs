//! `ATA_NUM_THREADS` sizing of the global pool.
//!
//! Runs as its own integration-test binary (own process), so setting the
//! environment variable before the first `global_pool_threads()` read is
//! race-free — the in-crate unit tests may have already spawned the
//! global pool in their process, this binary has not.

use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn env_override_sizes_the_global_pool() {
    // Must happen before anything touches the pool or the cached count.
    std::env::set_var("ATA_NUM_THREADS", "3");

    assert_eq!(rayon::global_pool_threads(), 3);
    // Outside any installed pool, the ambient thread count is the
    // global pool's.
    assert_eq!(rayon::current_num_threads(), 3);

    // The pool still executes work correctly at the overridden size.
    let hits = AtomicUsize::new(0);
    (0..64usize)
        .collect::<Vec<_>>()
        .into_par_iter()
        .for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    assert_eq!(hits.load(Ordering::Relaxed), 64);

    // Read-once semantics: changing the variable later has no effect.
    std::env::set_var("ATA_NUM_THREADS", "7");
    assert_eq!(rayon::global_pool_threads(), 3);

    // An explicit ThreadPool is unaffected by the global override.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("pool builds");
    assert_eq!(pool.install(rayon::current_num_threads), 2);
}
