//! Offline stand-in for the `rayon` crate (see `third_party/README.md`).
//!
//! Real data parallelism, minimal API: consumers call
//! `vec.into_par_iter()` (optionally `.enumerate()`) and `.for_each(f)`,
//! or build a fixed-size [`ThreadPool`] and `install` a closure.
//!
//! Since the Plan/Context redesign the pool is **persistent**: a
//! [`ThreadPool`] owns long-lived worker threads blocking on a shared
//! work queue, and `for_each` submits lifetime-erased jobs and waits on a
//! completion latch instead of spawning `std::thread::scope` threads per
//! call. A lazily-created global pool serves callers outside any
//! `install`, so even one-shot entry points stop paying thread-spawn
//! latency on every invocation. The original scoped-threads execution is
//! kept as a fallback: build with [`ThreadPoolBuilder::scoped`] or set
//! `ATA_RAYON_SCOPED=1` to force it process-wide.
//!
//! Work is still distributed as one bucket of items per worker,
//! round-robin, which matches how the workspace uses rayon (few, coarse,
//! pre-balanced tasks; see `ata-core::parallel`).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Where `for_each` sends its buckets.
#[derive(Clone, Default)]
enum Submit {
    /// No pool installed: use the lazily-created global persistent pool.
    #[default]
    Global,
    /// A persistent [`ThreadPool`] is installed: submit to its workers.
    Pool(Arc<PoolInner>),
    /// A scoped-fallback pool is installed: spawn scoped threads per call.
    Scoped,
}

thread_local! {
    /// Thread count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// Submission target installed by [`ThreadPool::install`].
    static CURRENT_POOL: RefCell<Submit> = const { RefCell::new(Submit::Global) };
    /// Set on pool worker threads: nested `for_each` calls run inline
    /// instead of re-entering the queue (which could deadlock).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads the calling context would use.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|p| p.get())
        .unwrap_or_else(global_pool_threads)
}

/// Parse a thread-count override (`ATA_NUM_THREADS`-style value):
/// a positive integer, anything else is ignored.
fn parse_thread_override(raw: Option<std::ffi::OsString>) -> Option<usize> {
    raw.and_then(|v| v.into_string().ok())
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Size of the process-global worker pool.
///
/// Defaults to `available_parallelism`, overridden by the
/// `ATA_NUM_THREADS` environment variable (a positive integer; invalid
/// values are ignored) — the knob for container deployments whose CPU
/// quota is smaller than the host's core count. Read once: changing the
/// variable after the first call (or after the global pool spawned) has
/// no effect.
pub fn global_pool_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        parse_thread_override(std::env::var_os("ATA_NUM_THREADS")).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// True when the scoped-threads fallback is forced via the environment.
fn scoped_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var_os("ATA_RAYON_SCOPED").is_some_and(|v| v != "0"))
}

/// A queued unit of work. The `'static` is a lie maintained by the
/// submitting call: `Latch::wait` blocks until every job has run, so the
/// borrows captured by the closure never outlive their stack frame.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Countdown latch a submitter waits on; also carries the first panic
/// payload raised by any of its jobs.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock().expect("latch poisoned");
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every counted job has completed, then re-raise the
    /// first panic any of them hit.
    fn wait(&self) {
        let mut st = self.state.lock().expect("latch poisoned");
        while st.remaining > 0 {
            st = self.done.wait(st).expect("latch poisoned");
        }
        if let Some(payload) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }
}

/// Shared state of a persistent pool: the job queue and shutdown flag.
struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    threads: usize,
}

impl PoolInner {
    fn submit(&self, job: Job) {
        let mut q = self.queue.lock().expect("pool queue poisoned");
        q.push_back(job);
        drop(q);
        self.available.notify_one();
    }

    /// Worker loop: pop jobs until shutdown.
    fn work(&self) {
        IN_WORKER.with(|w| w.set(true));
        loop {
            let job = {
                let mut q = self.queue.lock().expect("pool queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self.available.wait(q).expect("pool queue poisoned");
                }
            };
            // Panics are caught per-job and routed to the submitter's
            // latch inside the job wrapper, so the worker survives.
            job();
        }
    }
}

/// Spawn `threads` workers over a fresh [`PoolInner`].
fn spawn_workers(threads: usize) -> Arc<PoolInner> {
    let inner = Arc::new(PoolInner {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        threads,
    });
    for i in 0..threads {
        let inner = inner.clone();
        std::thread::Builder::new()
            .name(format!("ata-pool-{i}"))
            .spawn(move || inner.work())
            .expect("failed to spawn pool worker");
    }
    inner
}

/// The process-wide pool used outside any [`ThreadPool::install`].
/// Sized by [`global_pool_threads`] (`ATA_NUM_THREADS` respected).
fn global_pool() -> &'static Arc<PoolInner> {
    static GLOBAL: OnceLock<Arc<PoolInner>> = OnceLock::new();
    GLOBAL.get_or_init(|| spawn_workers(global_pool_threads()))
}

/// The traits consumers import.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

/// Parallel iterator machinery.
pub mod iter {
    use super::{
        current_num_threads, global_pool, scoped_forced, Job, Latch, PoolInner, Submit,
        CURRENT_POOL, IN_WORKER,
    };
    use std::sync::Arc;

    /// Conversion into a parallel iterator (consuming `self`).
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A finite, splittable sequence of items processed in parallel.
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item: Send;

        /// Consume the iterator into a vector of items (drive order is
        /// the original order).
        fn drain(self) -> Vec<Self::Item>;

        /// Pair each item with its index, like `Iterator::enumerate`.
        fn enumerate(self) -> VecParIter<(usize, Self::Item)> {
            VecParIter {
                items: self.drain().into_iter().enumerate().collect(),
            }
        }

        /// Apply `f` to every item, in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Send + Sync,
        {
            let items = self.drain();
            let workers = current_num_threads().min(items.len()).max(1);
            // Serial shortcuts: single worker, or we *are* a pool worker
            // (re-entering the queue could deadlock with all workers
            // waiting on each other's jobs).
            if workers == 1 || IN_WORKER.with(|w| w.get()) {
                for item in items {
                    f(item);
                }
                return;
            }
            // Round-robin buckets: preserves the coarse pre-balanced
            // decomposition the callers construct.
            let mut buckets: Vec<Vec<Self::Item>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in items.into_iter().enumerate() {
                buckets[i % workers].push(item);
            }
            match CURRENT_POOL.with(|p| p.borrow().clone()) {
                Submit::Scoped => run_scoped(buckets, &f),
                Submit::Pool(pool) => run_pooled(pool, buckets, &f),
                Submit::Global => {
                    if scoped_forced() {
                        run_scoped(buckets, &f);
                    } else {
                        run_pooled(global_pool().clone(), buckets, &f);
                    }
                }
            }
        }
    }

    /// The legacy execution: one `std::thread::scope` thread per bucket.
    /// Kept as the fallback path (`ATA_RAYON_SCOPED=1`).
    fn run_scoped<I: Send, F: Fn(I) + Send + Sync>(buckets: Vec<Vec<I>>, f: &F) {
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    for item in bucket {
                        f(item);
                    }
                });
            }
        });
    }

    /// Persistent-pool execution: submit each remote bucket as a
    /// lifetime-erased job, run one bucket inline, then wait on the
    /// latch (which also re-raises any job panic).
    fn run_pooled<I: Send, F: Fn(I) + Send + Sync>(
        pool: Arc<PoolInner>,
        mut buckets: Vec<Vec<I>>,
        f: &F,
    ) {
        let local = buckets.pop().expect("at least one bucket");
        let latch = Latch::new(buckets.len());
        for bucket in buckets {
            let latch = latch.clone();
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for item in bucket {
                        f(item);
                    }
                }));
                latch.complete(outcome.err());
            });
            // SAFETY: `latch.wait()` below does not return until this job
            // has run to completion (or panicked), so every borrow the
            // closure captures (`f`, the items) outlives its execution.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            pool.submit(job);
        }
        // The submitter contributes instead of idling: run one bucket
        // inline, then block for the rest.
        let local_outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for item in local {
                f(item);
            }
        }));
        latch.wait();
        if let Err(payload) = local_outcome {
            std::panic::resume_unwind(payload);
        }
    }

    /// Parallel iterator over an owned vector.
    pub struct VecParIter<T> {
        pub(crate) items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecParIter<T> {
        type Item = T;

        fn drain(self) -> Vec<T> {
            self.items
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;

        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }
}

/// Error building a pool (never produced by this stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
    scoped: bool,
}

impl ThreadPoolBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Use the scoped-threads fallback instead of persistent workers:
    /// the pool then only scopes a thread-count override and every
    /// `for_each` spawns its threads per call (the pre-redesign
    /// behavior).
    pub fn scoped(mut self, scoped: bool) -> Self {
        self.scoped = scoped;
        self
    }

    /// Build the pool, spawning its workers unless scoped.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.num_threads.unwrap_or_else(current_num_threads).max(1);
        let inner = if self.scoped || scoped_forced() {
            None
        } else {
            Some(spawn_workers(threads))
        };
        Ok(ThreadPool { threads, inner })
    }
}

/// A fixed-size persistent worker pool.
///
/// Workers are spawned at build time and block on a shared queue;
/// [`ThreadPool::install`] scopes both the thread-count override and the
/// submission target that `for_each` picks up. Dropping the pool signals
/// shutdown and lets the workers exit (they are detached, so drop does
/// not block on in-flight jobs — every submitter has already waited for
/// its own).
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
    inner: Option<Arc<PoolInner>>,
}

impl std::fmt::Debug for PoolInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolInner")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Run `f` with this pool's thread count and workers in force.
    ///
    /// The previous routing is restored even if `f` panics (a caught
    /// panic must not leave the thread permanently routed to this
    /// pool, which could be shut down by then).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore {
            threads: Option<usize>,
            pool: Submit,
        }
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|p| p.set(self.threads));
                CURRENT_POOL.with(|p| *p.borrow_mut() = std::mem::take(&mut self.pool));
            }
        }
        let submit = match &self.inner {
            Some(inner) => Submit::Pool(inner.clone()),
            None => Submit::Scoped,
        };
        let _restore = Restore {
            threads: POOL_THREADS.with(|p| p.replace(Some(self.threads))),
            pool: CURRENT_POOL.with(|p| p.replace(submit)),
        };
        f()
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            inner.shutdown.store(true, Ordering::Release);
            inner.available.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        items.into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn enumerate_matches_sequential_indices() {
        let items = vec![10usize, 20, 30];
        let sum = AtomicUsize::new(0);
        items.into_par_iter().enumerate().for_each(|(i, v)| {
            sum.fetch_add(i * 1000 + v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10 + 1020 + 2030);
    }

    #[test]
    fn thread_override_parsing() {
        use std::ffi::OsString;
        let parse = |s: &str| super::parse_thread_override(Some(OsString::from(s)));
        assert_eq!(parse("4"), Some(4));
        assert_eq!(parse(" 16 "), Some(16));
        assert_eq!(parse("0"), None, "zero workers is meaningless");
        assert_eq!(parse("-2"), None);
        assert_eq!(parse("lots"), None);
        assert_eq!(super::parse_thread_override(None), None);
    }

    #[test]
    fn global_pool_threads_is_stable_and_positive() {
        // The env-override behavior itself is exercised in the
        // `global_pool` integration binary (own process); here only the
        // invariants that hold regardless of environment.
        let n = super::global_pool_threads();
        assert!(n >= 1);
        assert_eq!(super::global_pool_threads(), n, "read-once caching");
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Restored outside.
        let outer = current_num_threads();
        assert!(outer >= 1);
    }

    #[test]
    fn parallel_writes_to_disjoint_slices() {
        let mut data = vec![0u32; 64];
        let chunks: Vec<&mut [u32]> = data.chunks_mut(16).collect();
        chunks.into_par_iter().enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 16) as u32 + 1);
        }
    }

    #[test]
    fn pool_reuse_runs_on_persistent_workers() {
        // Submitting work twice through the same installed pool must not
        // spawn new worker threads: jobs report the same small set of
        // worker thread names both times.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let names = std::sync::Mutex::new(std::collections::BTreeSet::new());
        for _round in 0..2 {
            pool.install(|| {
                (0..8).collect::<Vec<_>>().into_par_iter().for_each(|_| {
                    if let Some(name) = std::thread::current().name() {
                        if name.starts_with("ata-pool-") {
                            names.lock().unwrap().insert(name.to_string());
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            });
        }
        // At most the pool's two workers ever appear (the caller thread
        // also runs one bucket inline and has no ata-pool name).
        assert!(names.lock().unwrap().len() <= 2);
    }

    #[test]
    fn job_panic_propagates_to_submitter() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..4usize)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .for_each(|i| {
                        if i == 3 {
                            panic!("injected job failure");
                        }
                    });
            });
        }));
        assert!(result.is_err(), "panic must cross the pool boundary");
        // The pool stays usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            (0..4usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_for_each_inside_worker_runs_inline() {
        // A job that itself calls for_each must not deadlock.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            (0..4usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|_| {
                    (0..4usize)
                        .collect::<Vec<_>>()
                        .into_par_iter()
                        .for_each(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn install_restores_routing_after_panic() {
        let outer_threads = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"));
        }));
        assert!(result.is_err());
        drop(pool); // shut the pool down while this thread survives
                    // The thread must be routed back to the global pool, not the
                    // dead one: this would hang forever if install leaked routing.
        assert_eq!(current_num_threads(), outer_threads);
        let hits = AtomicUsize::new(0);
        (0..8usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scoped_fallback_builder_still_works() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(3)
            .scoped(true)
            .build()
            .unwrap();
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            (0..9usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 9);
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn concurrent_submitters_share_the_global_pool() {
        // Multiple OS threads (like mpisim ranks) driving for_each at
        // once must all complete: each waits only on its own latch.
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    (0..32usize)
                        .collect::<Vec<_>>()
                        .into_par_iter()
                        .for_each(|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 32);
    }
}
