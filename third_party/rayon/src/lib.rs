//! Offline stand-in for the `rayon` crate (see `third_party/README.md`).
//!
//! Real data parallelism, minimal API: consumers call
//! `vec.into_par_iter()` (optionally `.enumerate()`) and `.for_each(f)`,
//! or build a fixed-size [`ThreadPool`] and `install` a closure. Work is
//! executed on `std::thread::scope` threads — one bucket of items per
//! worker, round-robin assignment, which matches how the workspace uses
//! rayon (few, coarse, pre-balanced tasks; see `ata-core::parallel`).

use std::cell::Cell;

thread_local! {
    /// Thread count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the calling context would use.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|p| p.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The traits consumers import.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

/// Parallel iterator machinery.
pub mod iter {
    use super::current_num_threads;

    /// Conversion into a parallel iterator (consuming `self`).
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A finite, splittable sequence of items processed in parallel.
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item: Send;

        /// Consume the iterator into a vector of items (drive order is
        /// the original order).
        fn drain(self) -> Vec<Self::Item>;

        /// Pair each item with its index, like `Iterator::enumerate`.
        fn enumerate(self) -> VecParIter<(usize, Self::Item)> {
            VecParIter {
                items: self.drain().into_iter().enumerate().collect(),
            }
        }

        /// Apply `f` to every item, in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Send + Sync,
        {
            let items = self.drain();
            let workers = current_num_threads().min(items.len()).max(1);
            if workers == 1 {
                for item in items {
                    f(item);
                }
                return;
            }
            // Round-robin buckets: preserves the coarse pre-balanced
            // decomposition the callers construct.
            let mut buckets: Vec<Vec<Self::Item>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in items.into_iter().enumerate() {
                buckets[i % workers].push(item);
            }
            let f = &f;
            std::thread::scope(|scope| {
                for bucket in buckets {
                    scope.spawn(move || {
                        for item in bucket {
                            f(item);
                        }
                    });
                }
            });
        }
    }

    /// Parallel iterator over an owned vector.
    pub struct VecParIter<T> {
        pub(crate) items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecParIter<T> {
        type Item = T;

        fn drain(self) -> Vec<T> {
            self.items
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;

        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }
}

/// Error building a pool (never produced by this stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads.unwrap_or_else(current_num_threads).max(1),
        })
    }
}

/// A fixed-size worker pool. In this stand-in the pool holds no threads;
/// it scopes a worker-count override that `for_each` picks up, and the
/// scoped threads are spawned per call.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count in force.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|p| p.replace(Some(self.threads)));
        let out = f();
        POOL_THREADS.with(|p| p.set(prev));
        out
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        items.into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn enumerate_matches_sequential_indices() {
        let items = vec![10usize, 20, 30];
        let sum = AtomicUsize::new(0);
        items.into_par_iter().enumerate().for_each(|(i, v)| {
            sum.fetch_add(i * 1000 + v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10 + 1020 + 2030);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Restored outside.
        let outer = current_num_threads();
        assert!(outer >= 1);
    }

    #[test]
    fn parallel_writes_to_disjoint_slices() {
        let mut data = vec![0u32; 64];
        let chunks: Vec<&mut [u32]> = data.chunks_mut(16).collect();
        chunks.into_par_iter().enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 16) as u32 + 1);
        }
    }
}
