//! Offline stand-in for the `criterion` crate (see
//! `third_party/README.md`).
//!
//! Benchmarks compile and run with the same source as against real
//! criterion; this harness performs one warm-up iteration and a short
//! timed loop per benchmark, printing the mean iteration time. No
//! statistics, plots, or baselines — it exists so `cargo bench` works
//! offline and the benchmark code stays honest (it really runs).

use std::time::{Duration, Instant};

/// Measurement driver handed to each benchmark body.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly inside the time budget, recording timings.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up.
        std::hint::black_box(f());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.total += t0.elapsed();
            self.iters_done += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.iters_done == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters_done as u32
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Real criterion spends `d` per benchmark; keep runs short, the
        // stand-in is for smoke coverage rather than statistics.
        self.budget = d.min(Duration::from_secs(1));
        self
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            budget: self.budget,
        };
        f(&mut b);
        println!(
            "bench {}/{label}: {:?}/iter ({} iters)",
            self.name,
            b.mean(),
            b.iters_done
        );
    }

    /// Benchmark taking an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.label.clone();
        self.run(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmark with no input.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(name, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: Duration::from_millis(200),
            _criterion: self,
        }
    }

    /// Standalone benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group("toplevel").bench_function(name, f);
        self
    }
}

/// Prevent the optimizer from discarding a value (re-export of
/// `std::hint::black_box` for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn group_macro_produces_runnable_fn() {
        benches();
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            budget: Duration::from_millis(5),
        };
        b.iter(|| std::hint::black_box(2 * 2));
        assert!(b.iters_done > 0);
        assert!(b.mean() <= Duration::from_millis(5));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
