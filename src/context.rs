//! The plan–execute API: [`AtaContext`], [`AtaPlan`] and [`OwnedPlan`].
//!
//! The paper's algorithms are built for *repeated* heavy use — Gram
//! matrices inside least squares, SVD and covariance pipelines (§1) —
//! but one-shot free functions re-pay dispatch overhead on every call:
//! thread spawn-up for AtA-S and a fresh Strassen arena for every
//! recursion. Following the BLIS-Strassen observation that amortizing
//! workspace across calls is where a practical Strassen wins or loses,
//! this module splits the API in two phases:
//!
//! 1. **Context** ([`AtaContext`]) — built once per configuration
//!    (backend, cache model, Strassen kind, wire format). Owns the
//!    persistent worker pool and a cache of reusable Strassen arenas,
//!    both shared by every plan created from it. Internally the context
//!    is an `Arc` around its resources, so cloning is cheap and plans
//!    can outlive the handle they were created from (see
//!    [`AtaPlan::into_owned`]).
//! 2. **Plan** ([`AtaPlan`]) — built once per `(m, n)` problem shape.
//!    Pre-computes the §4.1 task tree and the exact workspace layout —
//!    including, for the simulated-dist backend, the full
//!    [`ata_dist::DistPlan`] (task tree + distribution layout), so
//!    repeat executions rebuild nothing — then executes any number of
//!    times against same-shape inputs, into caller-provided output
//!    ([`AtaPlan::execute_into`]) or freshly allocated output
//!    ([`AtaPlan::execute`]). [`AtaPlan::into_owned`] converts the
//!    borrowed plan into a `'static`, [`Send`]able [`OwnedPlan`] for
//!    long-lived services that move plans across threads.
//!
//! The [`Backend`] enum unifies dispatch: the same plan API fronts the
//! serial recursion (Algorithm 1), the shared-memory AtA-S (Algorithm 3)
//! and the simulated-cluster AtA-D (Algorithm 4), which previously had a
//! completely disjoint entry point in `ata-dist`.
//!
//! # Example
//!
//! ```
//! use ata::{AtaContext, Output};
//! use ata::mat::gen;
//! use std::num::NonZeroUsize;
//!
//! // Context: 4 worker threads, built once.
//! let ctx = AtaContext::shared(NonZeroUsize::new(4).unwrap());
//! // Plan: one 256 x 96 problem shape, built once...
//! let plan = ctx.plan::<f64>(256, 96);
//! // ...executed many times (a serving loop) without re-planning.
//! for seed in 0..3 {
//!     let a = gen::standard::<f64>(seed, 256, 96);
//!     let g = plan.execute(a.as_ref()).into_dense();
//!     assert!(g.is_symmetric(1e-12));
//! }
//! # let _ = Output::Gram;
//! ```

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ata_core::serial::{ata_into_with_kind, ata_workspace_elems, StrassenKind};
use ata_core::tasktree::SharedPlan;
use ata_core::{ata_s_planned, plan_workspace_elems, AtaOptions};
use ata_dist::{AtaDConfig, DistPlan, WireFormat};
use ata_kernels::{CacheConfig, KernelConfig};
use ata_mat::{MatMut, MatRef, Matrix, Scalar, SymPacked};
use ata_mpisim::{run, CostModel};
use ata_strassen::ArenaPool;

// ---------------------------------------------------------------------
// Backend and output selectors.
// ---------------------------------------------------------------------

/// Which execution engine a context drives — the unified dispatch over
/// the paper's three algorithm variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Algorithm 1: the serial cache-oblivious recursion.
    Serial,
    /// AtA-S (Algorithm 3) on `threads` workers of the persistent pool.
    Shared {
        /// Worker/task count (the invariant `threads > 0` lives in the
        /// type).
        threads: NonZeroUsize,
    },
    /// AtA-D (Algorithm 4) on the simulated LogGP cluster.
    SimulatedDist {
        /// Number of simulated ranks.
        ranks: NonZeroUsize,
        /// LogGP cost model driving the simulated clocks.
        loggp: CostModel,
    },
}

/// Which representation of `C = A^T A` an execution produces — unifying
/// the historical `gram` / `lower` / `packed` entry-point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Output {
    /// Full symmetric matrix (both triangles filled).
    #[default]
    Gram,
    /// Lower triangle only; strictly-upper entries are zero.
    Lower,
    /// Packed lower-triangular storage (`n(n+1)/2` elements, §3.1).
    Packed,
}

/// Result of [`AtaPlan::execute`]: dense or packed, per the plan's
/// [`Output`] selector.
#[derive(Debug, Clone)]
pub enum AtaOutput<T: Scalar> {
    /// Dense `n x n` output ([`Output::Gram`] or [`Output::Lower`]).
    Dense(Matrix<T>),
    /// Packed lower-triangular output ([`Output::Packed`]).
    Packed(SymPacked<T>),
}

impl<T: Scalar> AtaOutput<T> {
    /// The output as a dense matrix; packed results are expanded (both
    /// triangles filled).
    pub fn into_dense(self) -> Matrix<T> {
        match self {
            AtaOutput::Dense(c) => c,
            AtaOutput::Packed(p) => {
                let mut full = p.to_full();
                full.mirror_lower_to_upper();
                full
            }
        }
    }

    /// The output in packed storage; dense results are compacted from
    /// their lower triangle.
    pub fn into_packed(self) -> SymPacked<T> {
        match self {
            AtaOutput::Dense(c) => SymPacked::from_lower(&c),
            AtaOutput::Packed(p) => p,
        }
    }

    /// Order `n` of the (symmetric) output.
    pub fn order(&self) -> usize {
        match self {
            AtaOutput::Dense(c) => c.rows(),
            AtaOutput::Packed(p) => p.order(),
        }
    }
}

// ---------------------------------------------------------------------
// Arena cache (type-erased, shared by all plans of a context).
// ---------------------------------------------------------------------

/// Lock a mutex, recovering the guard even from a poisoned lock. The
/// maps and slots guarded in the serving layer are updated atomically
/// (insert/clone/clear), so the data is valid even if a panicking
/// thread died while holding the guard — poisoning must not cascade a
/// worker panic into every later request.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-scalar-type [`ArenaPool`]s, keyed by `TypeId` so one context can
/// serve `f32`, `f64` and exact-arithmetic plans simultaneously.
#[derive(Debug, Default)]
struct ArenaCache {
    pools: Mutex<HashMap<TypeId, Box<dyn Any + Send>>>,
}

impl ArenaCache {
    fn pool<T: Scalar + 'static>(&self) -> Arc<ArenaPool<T>> {
        let mut map = lock_recover(&self.pools);
        map.entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(Arc::new(ArenaPool::<T>::new())))
            .downcast_ref::<Arc<ArenaPool<T>>>()
            // ata-lint: allow(no-unwrap-in-lib): entries are inserted
            // keyed by their own TypeId, so the downcast cannot fail.
            .expect("arena cache entry has the keyed type")
            .clone()
    }
}

// ---------------------------------------------------------------------
// Plan flavor and the shape-keyed plan cache.
// ---------------------------------------------------------------------

/// How a plan decomposes its problem — the second half of a plan-cache
/// key (alongside the shape and [`Output`] selector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PlanFlavor {
    /// Follow the context's backend (the [`AtaContext::plan`] default).
    Auto,
    /// Always the serial recursion, regardless of backend: the batched
    /// serving shape, where a whole problem is one worker's task and
    /// parallelism comes from running many problems at once (see
    /// [`crate::batch::BatchPlan`]).
    SerialLeaf,
}

/// Key of one cached plan core: scalar type, shape, output selector and
/// decomposition flavor. The context's configuration (backend, cache
/// model, Strassen kind, wire format) is immutable, so it never needs to
/// participate in the key.
type PlanKey = (TypeId, usize, usize, Output, PlanFlavor);

/// Shape-keyed cache of type-erased `Arc<PlanCore<T>>` values, plus
/// hit/miss counters. Serving workloads (the batch and service
/// front-ends, the one-shot conveniences) re-plan the same handful of
/// shapes constantly; caching the cores makes re-planning a hash lookup.
#[derive(Debug, Default)]
struct PlanCache {
    map: Mutex<HashMap<PlanKey, Box<dyn Any + Send + Sync>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

// ---------------------------------------------------------------------
// Context.
// ---------------------------------------------------------------------

/// Builder for [`AtaContext`].
#[derive(Debug)]
pub struct AtaContextBuilder {
    backend: Backend,
    /// `None` = resolve per scalar type at planning time
    /// ([`CacheConfig::for_scalar`]), so an `f32` plan gets the
    /// `f32`-calibrated cutoff instead of inheriting the `f64` default.
    cache: Option<CacheConfig>,
    strassen: StrassenKind,
    wire: WireFormat,
    dedicated_pool: bool,
}

impl Default for AtaContextBuilder {
    fn default() -> Self {
        Self {
            backend: Backend::Serial,
            cache: None,
            strassen: StrassenKind::Classic,
            wire: WireFormat::default(),
            dedicated_pool: true,
        }
    }
}

impl AtaContextBuilder {
    /// Select the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for [`Backend::Shared`] with `threads` workers.
    pub fn threads(self, threads: NonZeroUsize) -> Self {
        self.backend(Backend::Shared { threads })
    }

    /// Override the cache model deciding recursion base cases. Without
    /// an override, each plan resolves the calibrated cutoff for its own
    /// scalar type ([`CacheConfig::for_scalar`]).
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Override the cache budget in elements.
    pub fn cache_words(mut self, words: usize) -> Self {
        self.cache = Some(CacheConfig::with_words(words));
        self
    }

    /// Select the 7-product scheme for off-diagonal products.
    pub fn strassen(mut self, kind: StrassenKind) -> Self {
        self.strassen = kind;
        self
    }

    /// Use the Strassen–Winograd products.
    pub fn winograd(self) -> Self {
        self.strassen(StrassenKind::Winograd)
    }

    /// Wire encoding of result blocks for the simulated-dist backend
    /// (§4.3.1). Defaults to [`WireFormat::SymPacked`], which is
    /// bit-identical to dense but strictly cheaper on the root's
    /// received words.
    pub fn wire(mut self, wire: WireFormat) -> Self {
        self.wire = wire;
        self
    }

    /// Whether a [`Backend::Shared`] context spawns its own persistent
    /// worker pool (default) or shares the process-global one. The
    /// legacy one-shot wrappers disable this so they never pay pool
    /// spawn-up per call.
    pub fn dedicated_pool(mut self, dedicated: bool) -> Self {
        self.dedicated_pool = dedicated;
        self
    }

    /// Build the context (spawning the worker pool for a dedicated
    /// shared backend).
    pub fn build(self) -> AtaContext {
        let pool = match self.backend {
            Backend::Shared { threads } if self.dedicated_pool => {
                Some(ata_kernels::par::pool_with_threads(threads.get()))
            }
            _ => None,
        };
        AtaContext {
            inner: Arc::new(ContextInner {
                backend: self.backend,
                cache: self.cache,
                strassen: self.strassen,
                wire: self.wire,
                pool,
                arenas: ArenaCache::default(),
                plans: PlanCache::default(),
            }),
        }
    }
}

/// The shared resources behind an [`AtaContext`] handle.
#[derive(Debug)]
struct ContextInner {
    backend: Backend,
    cache: Option<CacheConfig>,
    strassen: StrassenKind,
    wire: WireFormat,
    pool: Option<rayon::ThreadPool>,
    arenas: ArenaCache,
    plans: PlanCache,
}

impl ContextInner {
    /// The cache model plans of scalar type `T` use: the explicit
    /// override when one was configured, otherwise the per-scalar
    /// calibrated default.
    fn cache_for<T: Scalar>(&self) -> CacheConfig {
        self.cache.unwrap_or_else(CacheConfig::for_scalar::<T>)
    }

    /// The AtA-D configuration a plan of scalar type `T` resolves under
    /// this context — shared by the dist-backend plan cores and the
    /// sharded service's split lane, so both price and execute the same
    /// schedule.
    fn dist_config<T: Scalar>(&self) -> AtaDConfig {
        AtaDConfig {
            cache: self.cache_for::<T>(),
            wire: self.wire,
            ..AtaDConfig::default()
        }
    }

    /// Fetch or build the cached plan core for `(T, m, n, output,
    /// flavor)`. On a hit the core's cheap warm-up still runs, so the
    /// *calling* thread's packing buffers are grown even when another
    /// thread built the plan.
    fn plan_core<T: Scalar + 'static>(
        self: &Arc<Self>,
        m: usize,
        n: usize,
        output: Output,
        flavor: PlanFlavor,
    ) -> Arc<PlanCore<T>> {
        let key = (TypeId::of::<T>(), m, n, output, flavor);
        {
            let map = lock_recover(&self.plans.map);
            if let Some(entry) = map.get(&key) {
                let core = entry
                    .downcast_ref::<Arc<PlanCore<T>>>()
                    // ata-lint: allow(no-unwrap-in-lib): the cache key
                    // embeds `TypeId::of::<T>()`, so the downcast holds.
                    .expect("plan cache entry has the keyed type")
                    .clone();
                drop(map);
                self.plans.hits.fetch_add(1, Ordering::Relaxed);
                core.warm(self);
                return core;
            }
        }
        // Build outside the lock (planning is the expensive phase); a
        // concurrent builder of the same key wins via the entry API, so
        // every caller ends up sharing one core.
        let built = Arc::new(PlanCore::<T>::build(self, m, n, output, flavor));
        self.plans.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = lock_recover(&self.plans.map);
        map.entry(key)
            .or_insert_with(|| Box::new(built))
            .downcast_ref::<Arc<PlanCore<T>>>()
            // ata-lint: allow(no-unwrap-in-lib): the cache key embeds
            // `TypeId::of::<T>()`, so the downcast holds.
            .expect("plan cache entry has the keyed type")
            .clone()
    }
}

/// A reusable execution context: configuration plus the persistent
/// resources (worker pool, cached Strassen arenas) that one-shot calls
/// used to re-create on every invocation.
///
/// The context is a cheap [`Arc`]-backed handle — [`Clone`] shares the
/// same pool and arena cache. Create plans from it with
/// [`AtaContext::plan`]; one-shot conveniences ([`AtaContext::gram`] and
/// friends) build a transient plan internally but still reuse the
/// context's pool and arena cache.
#[derive(Debug, Clone)]
pub struct AtaContext {
    inner: Arc<ContextInner>,
}

impl Default for AtaContext {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl AtaContext {
    /// Start building a context.
    pub fn builder() -> AtaContextBuilder {
        AtaContextBuilder::default()
    }

    /// Serial context with the default cache model.
    pub fn serial() -> Self {
        Self::builder().build()
    }

    /// Shared-memory context with `threads` persistent workers.
    pub fn shared(threads: NonZeroUsize) -> Self {
        Self::builder().threads(threads).build()
    }

    /// Simulated-cluster context with `ranks` ranks under `loggp`.
    pub fn simulated_dist(ranks: NonZeroUsize, loggp: CostModel) -> Self {
        Self::builder()
            .backend(Backend::SimulatedDist { ranks, loggp })
            .build()
    }

    /// Map the legacy [`AtaOptions`] onto a context. Used by the
    /// deprecated `_with` wrappers; shares the process-global pool so a
    /// per-call context stays cheap.
    pub fn from_options(opts: &AtaOptions) -> Self {
        let mut b = Self::builder()
            .cache(opts.cache)
            .strassen(opts.strassen)
            .dedicated_pool(false);
        if let Some(threads) = NonZeroUsize::new(opts.threads).filter(|t| t.get() > 1) {
            b = b.threads(threads);
        }
        b.build()
    }

    /// The context's backend.
    pub fn backend(&self) -> Backend {
        self.inner.backend
    }

    /// The context's cache model. When no explicit override was
    /// configured this reports the process default ([`CacheConfig::default`]);
    /// the model a plan actually uses is resolved per scalar type at
    /// planning time — see [`AtaPlan::cache`].
    pub fn cache(&self) -> CacheConfig {
        self.inner.cache.unwrap_or_default()
    }

    /// The context's product scheme.
    pub fn strassen(&self) -> StrassenKind {
        self.inner.strassen
    }

    /// The context's wire format for the simulated-dist backend.
    pub fn wire(&self) -> WireFormat {
        self.inner.wire
    }

    /// Build a plan for an `m x n` input with the default
    /// [`Output::Gram`] selector.
    pub fn plan<T: Scalar + 'static>(&self, m: usize, n: usize) -> AtaPlan<'_, T> {
        self.plan_with(m, n, Output::Gram)
    }

    /// Build a plan for an `m x n` input with an explicit [`Output`]
    /// selector. This is the expensive phase: the §4.1 task tree is
    /// built (for the simulated-dist backend the full
    /// [`ata_dist::DistPlan`] — task tree plus distribution layout — so
    /// executions rebuild nothing), the arena cache warmed to the exact
    /// workspace requirement, and the packed-kernel buffers of the
    /// planning thread pre-grown (worker threads warm theirs on first
    /// execution and keep them for the life of the pool), so
    /// steady-state `execute` calls stay allocation-free.
    ///
    /// Plans are memoized in a shape-keyed cache on the context:
    /// re-planning an already-planned `(T, m, n, output)` combination is
    /// a hash lookup returning the same shared core (see
    /// [`AtaContext::plan_cache_len`]). The serving front-ends —
    /// [`crate::batch::BatchPlan`], [`crate::service::AtaService`], the
    /// one-shot conveniences — lean on this to re-plan per call for
    /// free.
    pub fn plan_with<T: Scalar + 'static>(
        &self,
        m: usize,
        n: usize,
        output: Output,
    ) -> AtaPlan<'_, T> {
        AtaPlan {
            ctx: self,
            core: self.inner.plan_core(m, n, output, PlanFlavor::Auto),
        }
    }

    /// Build an owned, `'static` plan directly — equivalent to
    /// `plan_with(..).into_owned()`.
    pub fn plan_owned<T: Scalar + 'static>(
        &self,
        m: usize,
        n: usize,
        output: Output,
    ) -> OwnedPlan<T> {
        OwnedPlan {
            ctx: self.clone(),
            core: self.inner.plan_core(m, n, output, PlanFlavor::Auto),
        }
    }

    /// Build the cached serial-leaf plan core used by the batched
    /// serving paths: the whole problem is one task, executed by a
    /// single worker with the serial recursion.
    pub(crate) fn serial_leaf_core<T: Scalar + 'static>(
        &self,
        m: usize,
        n: usize,
        output: Output,
    ) -> Arc<PlanCore<T>> {
        self.inner.plan_core(m, n, output, PlanFlavor::SerialLeaf)
    }

    /// Build (or fetch) the cached backend-following plan core — what
    /// [`AtaContext::plan_with`] wraps. The streaming accumulator uses
    /// this to run tall chunks through the context's configured engine.
    pub(crate) fn auto_core<T: Scalar + 'static>(
        &self,
        m: usize,
        n: usize,
        output: Output,
    ) -> Arc<PlanCore<T>> {
        self.inner.plan_core(m, n, output, PlanFlavor::Auto)
    }

    /// Number of distinct plan cores currently memoized in the context's
    /// shape-keyed plan cache (all scalar types and flavors).
    pub fn plan_cache_len(&self) -> usize {
        lock_recover(&self.inner.plans.map).len()
    }

    /// How many plan requests were served from the shape-keyed cache.
    pub fn plan_cache_hits(&self) -> usize {
        self.inner.plans.hits.load(Ordering::Relaxed)
    }

    /// How many plan requests had to build a fresh core.
    pub fn plan_cache_misses(&self) -> usize {
        self.inner.plans.misses.load(Ordering::Relaxed)
    }

    /// Drop every memoized plan core. Long-lived services seeing an
    /// unbounded diversity of shapes can call this to bound the cache's
    /// footprint; plans already handed out keep working (they share the
    /// cores by `Arc`).
    pub fn clear_plan_cache(&self) {
        lock_recover(&self.inner.plans.map).clear();
    }

    /// One-shot full symmetric Gram matrix through this context.
    pub fn gram<T: Scalar + 'static>(&self, a: MatRef<'_, T>) -> Matrix<T> {
        let (m, n) = a.shape();
        self.plan_with::<T>(m, n, Output::Gram)
            .execute(a)
            .into_dense()
    }

    /// One-shot lower-triangular `A^T A` through this context.
    pub fn lower<T: Scalar + 'static>(&self, a: MatRef<'_, T>) -> Matrix<T> {
        let (m, n) = a.shape();
        match self.plan_with::<T>(m, n, Output::Lower).execute(a) {
            AtaOutput::Dense(c) => c,
            AtaOutput::Packed(p) => p.to_full(),
        }
    }

    /// One-shot packed `A^T A` through this context.
    pub fn packed<T: Scalar + 'static>(&self, a: MatRef<'_, T>) -> SymPacked<T> {
        let (m, n) = a.shape();
        self.plan_with::<T>(m, n, Output::Packed)
            .execute(a)
            .into_packed()
    }

    /// The cache model a plan of scalar type `T` would resolve under
    /// this context (explicit override or per-scalar default).
    pub(crate) fn cache_for<T: Scalar>(&self) -> CacheConfig {
        self.inner.cache_for::<T>()
    }

    /// The AtA-D configuration a plan of scalar type `T` resolves under
    /// this context — what the dist-backend plan cores build with, and
    /// what the sharded service's split lane plans and prices with.
    pub(crate) fn dist_config<T: Scalar>(&self) -> AtaDConfig {
        self.inner.dist_config::<T>()
    }

    /// The context's arena pool for `T` — shared by every plan and the
    /// streaming/batched front-ends.
    pub(crate) fn arena_pool<T: Scalar + 'static>(&self) -> Arc<ArenaPool<T>> {
        self.inner.arenas.pool::<T>()
    }

    /// The context's dedicated worker pool, if the backend spawned one.
    pub(crate) fn worker_pool(&self) -> Option<&rayon::ThreadPool> {
        self.inner.pool.as_ref()
    }

    /// Execute a cached plan core through this context (fresh output).
    pub(crate) fn execute_core<T: Scalar + 'static>(
        &self,
        core: &PlanCore<T>,
        a: MatRef<'_, T>,
    ) -> AtaOutput<T> {
        core.execute(&self.inner, a)
    }

    /// Accumulate a cached plan core's product into `c`'s lower
    /// triangle through this context: `C_low += alpha * A^T A`.
    pub(crate) fn accumulate_core<T: Scalar + 'static>(
        &self,
        core: &PlanCore<T>,
        alpha: T,
        a: MatRef<'_, T>,
        c: &mut MatMut<'_, T>,
    ) {
        core.accumulate_lower(&self.inner, alpha, a, c);
    }
}

/// The lazily-initialized process-wide default context (serial backend,
/// default cache model) behind the legacy free functions.
pub fn default_context() -> &'static AtaContext {
    static DEFAULT: OnceLock<AtaContext> = OnceLock::new();
    DEFAULT.get_or_init(AtaContext::serial)
}

// ---------------------------------------------------------------------
// Plan.
// ---------------------------------------------------------------------

/// The context-independent part of a plan: everything pre-computed at
/// planning time, shared by [`AtaPlan`] and [`OwnedPlan`] — and, through
/// the context's shape-keyed cache, by every later plan of the same
/// shape.
#[derive(Debug)]
pub(crate) struct PlanCore<T> {
    m: usize,
    n: usize,
    output: Output,
    /// Decomposition flavor this core was built (and cached) under.
    flavor: PlanFlavor,
    /// The cache model resolved for `T` at planning time.
    cache: CacheConfig,
    /// Prebuilt AtA-S task tree ([`Backend::Shared`] only).
    shared: Option<SharedPlan>,
    /// Prebuilt AtA-D plan — task tree + distribution layout
    /// ([`Backend::SimulatedDist`] only). `Arc` so owned clones of the
    /// plan share one tree.
    dist: Option<Arc<DistPlan>>,
    /// Per-worker Strassen arena requirement, elements.
    ws_elems: usize,
    /// Per-thread packed-kernel buffer requirement, elements.
    pack_elems: usize,
    /// The context's arena pool for `T`.
    arenas: Arc<ArenaPool<T>>,
}

impl<T: Scalar + 'static> PlanCore<T> {
    fn build(inner: &ContextInner, m: usize, n: usize, output: Output, flavor: PlanFlavor) -> Self {
        let cache = inner.cache_for::<T>();
        let arenas = inner.arenas.pool::<T>();
        let mut dist = None;
        let (shared, ws_elems) = match (flavor, inner.backend) {
            (PlanFlavor::SerialLeaf, _) | (PlanFlavor::Auto, Backend::Serial) => {
                (None, ata_workspace_elems(m, n, &cache, inner.strassen))
            }
            (PlanFlavor::Auto, Backend::Shared { threads }) => {
                let plan = SharedPlan::build(n, threads.get());
                let need = plan_workspace_elems(&plan, m, &cache, inner.strassen);
                (Some(plan), need)
            }
            (PlanFlavor::Auto, Backend::SimulatedDist { ranks, .. }) => {
                let cfg = inner.dist_config::<T>();
                dist = Some(Arc::new(DistPlan::build(m, n, ranks.get(), &cfg)));
                (None, 0)
            }
        };
        // Leaf-kernel packing workspace (BLIS-style engine): sized from
        // the measured per-scalar blocking, warmed per thread.
        // `for_scalar` resolves the *per-ISA* tuned row (the fused
        // AVX2+FMA kernels prefer different tiles than the portable
        // ones), so the warmed buffers match whatever tile path
        // `ata_kernels::simd::detected()` dispatches at execute time.
        let (pack_a, pack_b) = KernelConfig::for_scalar::<T>().pack_buffer_elems();
        let pack_elems = if dist.is_some() { 0 } else { pack_a + pack_b };
        let core = PlanCore {
            m,
            n,
            output,
            flavor,
            cache,
            shared,
            dist,
            ws_elems,
            pack_elems,
            arenas,
        };
        core.warm(inner);
        core
    }

    /// Warm the shared resources this core relies on: the context's
    /// arena pool (to the exact per-worker requirement) and the calling
    /// thread's packing buffers. Idempotent and cheap once warm, so
    /// plan-cache hits re-run it for the benefit of new calling threads.
    fn warm(&self, inner: &ContextInner) {
        let arena_count = match (self.flavor, inner.backend) {
            (PlanFlavor::Auto, Backend::SimulatedDist { .. }) => 0,
            (PlanFlavor::Auto, Backend::Serial) => 1,
            (PlanFlavor::Auto, Backend::Shared { threads }) => threads.get(),
            // Batched serving: any pool worker may pick up a whole
            // problem, so each needs its own arena.
            (PlanFlavor::SerialLeaf, _) => match &inner.pool {
                Some(pool) => pool.current_num_threads(),
                None => rayon::current_num_threads(),
            },
        };
        if arena_count > 0 {
            self.arenas.warm(arena_count, self.ws_elems);
        }
        if self.pack_elems > 0 {
            let (pack_a, pack_b) = KernelConfig::for_scalar::<T>().pack_buffer_elems();
            ata_kernels::pack::warm_thread::<T>(pack_a, pack_b);
        }
    }

    /// Planned input shape `(m, n)`.
    pub(crate) fn planned_shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Planned output selector.
    pub(crate) fn planned_output(&self) -> Output {
        self.output
    }

    /// Accumulate the lower triangle: `C_low += A^T A`, the β = 1 mode
    /// behind [`AtaPlan::execute_accumulate`] and the streaming
    /// [`crate::stream::GramAccumulator`]. Strictly-upper entries of `c`
    /// are never touched.
    fn accumulate_lower(
        &self,
        inner: &ContextInner,
        alpha: T,
        a: MatRef<'_, T>,
        c: &mut MatMut<'_, T>,
    ) {
        assert_eq!(
            a.shape(),
            (self.m, self.n),
            "plan built for {}x{}, input is {:?}",
            self.m,
            self.n,
            a.shape()
        );
        assert_eq!(
            c.shape(),
            (self.n, self.n),
            "output must be {0}x{0}, got {1:?}",
            self.n,
            c.shape()
        );
        match (self.flavor, inner.backend) {
            (PlanFlavor::SerialLeaf, _) | (PlanFlavor::Auto, Backend::Serial) => {
                let mut ws = self.arenas.checkout(self.ws_elems);
                ata_into_with_kind(alpha, a, c, &self.cache, inner.strassen, &mut ws);
                self.arenas.give_back(ws);
            }
            (PlanFlavor::Auto, Backend::Shared { .. }) => {
                // ata-lint: allow(no-unwrap-in-lib): `PlanCore::build`
                // populates `shared` whenever the backend is Shared.
                let plan = self.shared.as_ref().expect("shared backend has a plan");
                let mut exec =
                    || ata_s_planned(alpha, a, c, plan, &self.cache, inner.strassen, &self.arenas);
                match &inner.pool {
                    Some(pool) => pool.install(exec),
                    None => exec(),
                }
            }
            (PlanFlavor::Auto, Backend::SimulatedDist { .. }) => {
                // The simulated cluster computes a fresh lower triangle;
                // fold it into the accumulator element-wise.
                let mut fresh = Matrix::zeros(self.n, self.n);
                self.compute_lower(inner, a, &mut fresh.as_mut());
                for i in 0..self.n {
                    for j in 0..=i {
                        c[(i, j)] += alpha * fresh[(i, j)];
                    }
                }
            }
        }
    }

    /// Compute the lower triangle into `c`. The serial, shared and
    /// serial-leaf arms accumulate (`C_low += A^T A`, the kernels'
    /// native contract); the simulated-dist arm overwrites the lower
    /// triangle with the cluster's result. Callers wanting a pure
    /// product zero the triangle first; callers wanting accumulation on
    /// the dist backend go through [`PlanCore::accumulate_lower`], which
    /// folds the cluster result in via a scratch buffer.
    fn compute_lower(&self, inner: &ContextInner, a: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
        match (self.flavor, inner.backend) {
            (PlanFlavor::SerialLeaf, _) | (PlanFlavor::Auto, Backend::Serial) => {
                let mut ws = self.arenas.checkout(self.ws_elems);
                ata_into_with_kind(T::ONE, a, c, &self.cache, inner.strassen, &mut ws);
                self.arenas.give_back(ws);
            }
            (PlanFlavor::Auto, Backend::Shared { .. }) => {
                // ata-lint: allow(no-unwrap-in-lib): `PlanCore::build`
                // populates `shared` whenever the backend is Shared.
                let plan = self.shared.as_ref().expect("shared backend has a plan");
                match &inner.pool {
                    Some(pool) => pool.install(|| {
                        ata_s_planned(
                            T::ONE,
                            a,
                            c,
                            plan,
                            &self.cache,
                            inner.strassen,
                            &self.arenas,
                        )
                    }),
                    None => ata_s_planned(
                        T::ONE,
                        a,
                        c,
                        plan,
                        &self.cache,
                        inner.strassen,
                        &self.arenas,
                    ),
                }
            }
            (PlanFlavor::Auto, Backend::SimulatedDist { ranks, loggp }) => {
                // ata-lint: allow(no-unwrap-in-lib): `PlanCore::build`
                // populates `dist` whenever the backend is SimulatedDist.
                let plan = self.dist.as_ref().expect("dist backend has a plan");
                let owned = a.to_matrix();
                let n = self.n;
                let (input, plan_ref) = (&owned, plan.as_ref());
                let report = run(ranks.get(), loggp, move |comm| {
                    let input = (comm.rank() == 0).then_some(input);
                    // Fault-free universe: execute cannot return Err.
                    plan_ref
                        .execute(input, comm)
                        .unwrap_or_else(|e| panic!("fault-free AtA-D failed: {e}"))
                });
                let lower = report
                    .results
                    .into_iter()
                    .flatten()
                    .next()
                    // ata-lint: allow(no-unwrap-in-lib): the closure
                    // passed to `run` returns Some exactly on rank 0.
                    .expect("rank 0 returns the result");
                for i in 0..n {
                    for j in 0..=i {
                        c[(i, j)] = lower[(i, j)];
                    }
                }
            }
        }
    }

    fn execute_into(&self, inner: &ContextInner, a: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
        assert_eq!(
            a.shape(),
            (self.m, self.n),
            "plan built for {}x{}, input is {:?}",
            self.m,
            self.n,
            a.shape()
        );
        assert_eq!(
            c.shape(),
            (self.n, self.n),
            "output must be {0}x{0}, got {1:?}",
            self.n,
            c.shape()
        );
        c.fill_zero();
        self.compute_lower(inner, a, c);
        if self.output == Output::Gram {
            // Mirror in place: C is symmetric by construction.
            for i in 0..self.n {
                for j in (i + 1)..self.n {
                    c[(i, j)] = c[(j, i)];
                }
            }
        }
    }

    fn execute(&self, inner: &ContextInner, a: MatRef<'_, T>) -> AtaOutput<T> {
        assert_eq!(
            a.shape(),
            (self.m, self.n),
            "plan built for {}x{}, input is {:?}",
            self.m,
            self.n,
            a.shape()
        );
        let mut c = Matrix::zeros(self.n, self.n);
        self.compute_lower(inner, a, &mut c.as_mut());
        match self.output {
            Output::Gram => {
                c.mirror_lower_to_upper();
                AtaOutput::Dense(c)
            }
            Output::Lower => AtaOutput::Dense(c),
            Output::Packed => AtaOutput::Packed(SymPacked::from_lower(&c)),
        }
    }
}

/// A reusable execution plan for one `(m, n)` problem shape.
///
/// Created by [`AtaContext::plan`]; borrows its context (whose pool and
/// arena cache it uses) and can be executed any number of times, from
/// multiple threads, against inputs of the planned shape. Convert to a
/// `'static` [`OwnedPlan`] with [`AtaPlan::into_owned`] when the plan
/// must move across threads or outlive the context handle.
#[derive(Debug)]
pub struct AtaPlan<'ctx, T> {
    ctx: &'ctx AtaContext,
    core: Arc<PlanCore<T>>,
}

/// An owned, `'static` execution plan for long-lived services: holds a
/// clone of its (Arc-backed) [`AtaContext`], so it is [`Send`] and can
/// move across threads — into a serving loop, a thread pool, or an
/// `Arc` shared by many workers — while still using the context's
/// persistent pool and arena cache.
///
/// Created by [`AtaPlan::into_owned`] or [`AtaContext::plan_owned`].
#[derive(Debug)]
pub struct OwnedPlan<T> {
    ctx: AtaContext,
    core: Arc<PlanCore<T>>,
}

macro_rules! plan_accessors {
    () => {
        /// Planned input shape `(m, n)`.
        pub fn shape(&self) -> (usize, usize) {
            (self.core.m, self.core.n)
        }

        /// The plan's output selector.
        pub fn output(&self) -> Output {
            self.core.output
        }

        /// Exact per-worker Strassen workspace requirement, in elements —
        /// the size the context's arena cache was warmed to.
        pub fn workspace_elems(&self) -> usize {
            self.core.ws_elems
        }

        /// Per-thread packing-buffer requirement of the leaf microkernel
        /// engine, in elements (`apack + bpack`; zero for the
        /// simulated-dist backend, whose ranks size their own). Planning
        /// warms the calling thread to this size; each pool worker grows
        /// its own buffers once on first execution and keeps them for
        /// the life of the pool.
        pub fn pack_workspace_elems(&self) -> usize {
            self.core.pack_elems
        }

        /// The prebuilt AtA-D plan ([`Backend::SimulatedDist`] only):
        /// task tree plus distribution layout, built once at planning
        /// time and reused by every execution.
        pub fn dist_plan(&self) -> Option<&DistPlan> {
            self.core.dist.as_deref()
        }

        /// The cache model this plan's recursion actually uses: the
        /// context's explicit override when one was configured,
        /// otherwise the calibrated per-scalar default resolved at
        /// planning time ([`CacheConfig::for_scalar`]).
        pub fn cache(&self) -> CacheConfig {
            self.core.cache
        }
    };
}

impl<T: Scalar + 'static> AtaPlan<'_, T> {
    plan_accessors!();

    /// Execute the plan, writing dense output into a caller-provided
    /// `n x n` buffer — the serving-loop entry point. For the
    /// [`Backend::Serial`] and [`Backend::Shared`] backends this is
    /// allocation-free after warm-up; [`Backend::SimulatedDist`]
    /// necessarily copies the operand into the simulated cluster on
    /// every call.
    ///
    /// The buffer is overwritten: [`Output::Gram`] fills both triangles;
    /// [`Output::Lower`] and [`Output::Packed`] fill the lower triangle
    /// and zero the strict upper.
    ///
    /// # Panics
    /// If `a` is not the planned shape or `c` is not `n x n`.
    pub fn execute_into(&self, a: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
        self.core.execute_into(&self.ctx.inner, a, c);
    }

    /// Execute the plan into freshly allocated output, per the plan's
    /// [`Output`] selector.
    ///
    /// # Panics
    /// If `a` is not the planned shape.
    pub fn execute(&self, a: MatRef<'_, T>) -> AtaOutput<T> {
        self.core.execute(&self.ctx.inner, a)
    }

    /// Accumulate into a caller-held buffer: `C_low += A^T A`, the β = 1
    /// mode of the rank-update structure `C += Aᵢᵀ Aᵢ`. Only the lower
    /// triangle of `c` is read and written — strictly-upper entries are
    /// untouched, and the plan's [`Output`] selector is irrelevant. This
    /// is the primitive behind [`crate::stream::GramAccumulator`]: call
    /// it once per row chunk and the chunks' Gram contributions sum in
    /// place.
    ///
    /// # Panics
    /// If `a` is not the planned shape or `c` is not `n x n`.
    pub fn execute_accumulate(&self, a: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
        self.core.accumulate_lower(&self.ctx.inner, T::ONE, a, c);
    }

    /// Convert into an [`OwnedPlan`] that holds its own (cheap, shared)
    /// context handle instead of a borrow — nothing is re-planned, and
    /// the worker pool and arena cache stay shared with the original
    /// context.
    pub fn into_owned(self) -> OwnedPlan<T> {
        OwnedPlan {
            ctx: self.ctx.clone(),
            core: self.core,
        }
    }
}

impl<T: Scalar + 'static> OwnedPlan<T> {
    plan_accessors!();

    /// See [`AtaPlan::execute_into`].
    ///
    /// # Panics
    /// If `a` is not the planned shape or `c` is not `n x n`.
    pub fn execute_into(&self, a: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
        self.core.execute_into(&self.ctx.inner, a, c);
    }

    /// See [`AtaPlan::execute`].
    ///
    /// # Panics
    /// If `a` is not the planned shape.
    pub fn execute(&self, a: MatRef<'_, T>) -> AtaOutput<T> {
        self.core.execute(&self.ctx.inner, a)
    }

    /// See [`AtaPlan::execute_accumulate`].
    ///
    /// # Panics
    /// If `a` is not the planned shape or `c` is not `n x n`.
    pub fn execute_accumulate(&self, a: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
        self.core.accumulate_lower(&self.ctx.inner, T::ONE, a, c);
    }

    /// The context handle this plan executes through.
    pub fn context(&self) -> &AtaContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_core::tasktree::DistTree;
    use ata_mat::{gen, reference};

    fn oracle(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.cols();
        let mut c = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        c
    }

    #[test]
    fn serial_plan_matches_oracle_across_reuses() {
        let ctx = AtaContext::builder().cache_words(32).build();
        let plan = ctx.plan::<f64>(40, 32);
        for seed in 0..4 {
            let a = gen::standard::<f64>(seed, 40, 32);
            let g = plan.execute(a.as_ref()).into_dense();
            assert!(g.max_abs_diff_lower(&oracle(&a)) < 1e-10, "seed {seed}");
            assert!(g.is_symmetric(0.0));
        }
    }

    #[test]
    fn shared_plan_executes_on_context_pool() {
        let ctx = AtaContext::shared(NonZeroUsize::new(4).unwrap());
        let plan = ctx.plan::<f64>(64, 48);
        let a = gen::standard::<f64>(7, 64, 48);
        let g = plan.execute(a.as_ref()).into_dense();
        assert!(g.max_abs_diff_lower(&oracle(&a)) < 1e-10);
    }

    #[test]
    fn execute_into_reuses_caller_buffer() {
        let ctx = AtaContext::builder()
            .threads(NonZeroUsize::new(2).unwrap())
            .cache_words(64)
            .build();
        let plan = ctx.plan_with::<f64>(32, 24, Output::Lower);
        let mut c = Matrix::zeros(24, 24);
        for seed in 0..3 {
            let a = gen::standard::<f64>(seed + 100, 32, 24);
            plan.execute_into(a.as_ref(), &mut c.as_mut());
            assert!(c.max_abs_diff_lower(&oracle(&a)) < 1e-10, "seed {seed}");
            // Strict upper zeroed for the Lower selector.
            for i in 0..24 {
                for j in (i + 1)..24 {
                    assert_eq!(c[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn packed_selector_round_trips() {
        let ctx = AtaContext::serial();
        let plan = ctx.plan_with::<f64>(20, 12, Output::Packed);
        let a = gen::standard::<f64>(4, 20, 12);
        let p = plan.execute(a.as_ref()).into_packed();
        assert_eq!(p.order(), 12);
        let mut full = p.to_full();
        full.mirror_lower_to_upper();
        let g = ctx.gram(a.as_ref());
        assert!(full.max_abs_diff(&g) < 1e-12);
    }

    #[test]
    fn dist_backend_matches_direct_ata_d_bitwise() {
        use ata_dist::{ata_d, AtaDConfig};
        let (m, n, ranks) = (32usize, 24usize, 4usize);
        let a = gen::standard::<f64>(11, m, n);
        let ctx = AtaContext::simulated_dist(NonZeroUsize::new(ranks).unwrap(), CostModel::zero());
        let via_ctx = ctx.lower(a.as_ref());
        let a_ref = &a;
        let report = run(ranks, CostModel::zero(), move |comm| {
            let input = (comm.rank() == 0).then_some(a_ref);
            ata_d(input, m, n, comm, &AtaDConfig::default())
        });
        let direct = report.results[0].as_ref().expect("root holds C");
        assert_eq!(
            via_ctx.max_abs_diff(direct),
            0.0,
            "context dist backend must be bit-identical to ata_d"
        );
    }

    #[test]
    fn dist_plan_is_built_once_and_reused() {
        // Shape unique within this test binary: the shape-keyed build
        // counter stays deterministic under the parallel test harness.
        let (m, n, ranks) = (49usize, 41usize, 6usize);
        let ctx = AtaContext::simulated_dist(NonZeroUsize::new(ranks).unwrap(), CostModel::zero());
        let builds_before = DistTree::build_count_for(m, n, ranks);
        let plan = ctx.plan_with::<f64>(m, n, Output::Lower);
        assert_eq!(
            DistTree::build_count_for(m, n, ranks),
            builds_before + 1,
            "planning builds the DistTree exactly once"
        );
        assert!(plan.dist_plan().is_some());
        let a = gen::standard::<f64>(17, m, n);
        let mut runs = Vec::new();
        for _ in 0..3 {
            runs.push(plan.execute(a.as_ref()).into_dense());
        }
        assert_eq!(
            DistTree::build_count_for(m, n, ranks),
            builds_before + 1,
            "repeat executions must rebuild no DistTree"
        );
        assert_eq!(runs[0].max_abs_diff(&runs[1]), 0.0, "bit-identical reuse");
        assert_eq!(runs[0].max_abs_diff(&runs[2]), 0.0, "bit-identical reuse");
        assert!(runs[0].max_abs_diff_lower(&oracle(&a)) < 1e-10);
    }

    #[test]
    fn dist_wire_formats_agree_bitwise_through_the_context() {
        let (m, n, ranks) = (40usize, 32usize, 5usize);
        let a = gen::standard::<f64>(23, m, n);
        let mk = |wire| {
            AtaContext::builder()
                .backend(Backend::SimulatedDist {
                    ranks: NonZeroUsize::new(ranks).unwrap(),
                    loggp: CostModel::zero(),
                })
                .wire(wire)
                .build()
        };
        let dense = mk(WireFormat::Dense).lower(a.as_ref());
        let packed = mk(WireFormat::SymPacked).lower(a.as_ref());
        assert_eq!(dense.max_abs_diff(&packed), 0.0);
    }

    #[test]
    fn owned_plan_moves_across_threads() {
        // OwnedPlan must be Send (compile-time check) and produce the
        // same bits as the borrowed plan it came from.
        fn assert_send<X: Send>(_: &X) {}
        let ctx = AtaContext::builder().cache_words(32).build();
        let a = gen::standard::<f64>(31, 36, 28);
        let borrowed = ctx.plan_with::<f64>(36, 28, Output::Gram);
        let baseline = borrowed.execute(a.as_ref()).into_dense();
        let owned = borrowed.into_owned();
        assert_send(&owned);
        assert_eq!(owned.shape(), (36, 28));
        let a2 = a.clone();
        let from_thread = std::thread::spawn(move || owned.execute(a2.as_ref()).into_dense())
            .join()
            .expect("worker thread");
        assert_eq!(baseline.max_abs_diff(&from_thread), 0.0);
    }

    #[test]
    fn owned_plan_outlives_the_original_context_handle() {
        let a = gen::standard::<f64>(41, 24, 20);
        let (owned, baseline) = {
            let ctx = AtaContext::shared(NonZeroUsize::new(2).unwrap());
            let plan = ctx.plan_owned::<f64>(24, 20, Output::Lower);
            let baseline = plan.execute(a.as_ref());
            (plan, baseline)
            // `ctx` handle drops here; the Arc keeps the pool alive.
        };
        let again = owned.execute(a.as_ref());
        match (baseline, again) {
            (AtaOutput::Dense(b), AtaOutput::Dense(c)) => {
                assert_eq!(b.max_abs_diff(&c), 0.0);
            }
            _ => panic!("Lower selector yields dense output"),
        }
        assert!(matches!(owned.context().backend(), Backend::Shared { .. }));
    }

    #[test]
    fn owned_dist_plan_is_send_and_reuses_the_tree() {
        let ctx = AtaContext::simulated_dist(NonZeroUsize::new(4).unwrap(), CostModel::zero());
        let owned = ctx.plan_owned::<f64>(24, 16, Output::Gram);
        let builds = DistTree::build_count_for(24, 16, 4);
        let a = gen::standard::<f64>(51, 24, 16);
        let handle = std::thread::spawn(move || {
            let g = owned.execute(a.as_ref()).into_dense();
            (owned, g)
        });
        let (owned, g) = handle.join().expect("worker thread");
        assert_eq!(
            DistTree::build_count_for(24, 16, 4),
            builds,
            "no rebuild across threads"
        );
        assert!(g.is_symmetric(0.0));
        assert!(owned.dist_plan().is_some());
    }

    #[test]
    fn plans_share_the_context_arena_cache() {
        let ctx = AtaContext::builder().cache_words(16).build();
        let plan = ctx.plan::<f64>(32, 32);
        let a = gen::standard::<f64>(1, 32, 32);
        let _ = plan.execute(a.as_ref());
        let cached_before = ctx.arena_pool::<f64>().cached_elems();
        // A second same-shape plan must not grow the cache further.
        let plan2 = ctx.plan::<f64>(32, 32);
        let _ = plan2.execute(a.as_ref());
        assert_eq!(ctx.arena_pool::<f64>().cached_elems(), cached_before);
    }

    #[test]
    fn from_options_maps_legacy_knobs() {
        let opts = AtaOptions::with_threads(3).cache_words(128).winograd();
        let ctx = AtaContext::from_options(&opts);
        assert_eq!(
            ctx.backend(),
            Backend::Shared {
                threads: NonZeroUsize::new(3).unwrap()
            }
        );
        assert_eq!(ctx.cache().words, 128);
        assert_eq!(ctx.strassen(), StrassenKind::Winograd);
        assert_eq!(ctx.wire(), WireFormat::SymPacked, "packed is the default");
        assert_eq!(
            AtaContext::from_options(&AtaOptions::serial()).backend(),
            Backend::Serial
        );
    }

    #[test]
    fn plan_sizes_and_warms_pack_buffers() {
        let ctx = AtaContext::serial();
        let plan = ctx.plan::<f64>(64, 48);
        let (a_elems, b_elems) = KernelConfig::for_scalar::<f64>().pack_buffer_elems();
        assert_eq!(plan.pack_workspace_elems(), a_elems + b_elems);
        // Planning warmed this thread's buffers to the full requirement.
        assert!(ata_kernels::pack::thread_buf_elems::<f64>() >= a_elems + b_elems);
        // The dist backend packs rank-side; the plan reports zero.
        let dist = AtaContext::simulated_dist(NonZeroUsize::new(2).unwrap(), CostModel::zero());
        assert_eq!(dist.plan::<f64>(16, 8).pack_workspace_elems(), 0);
    }

    #[test]
    fn default_context_resolves_cache_per_scalar() {
        // Satellite fix: without an explicit cache override, an f32
        // plan must use the f32-calibrated cutoff, not inherit the f64
        // default.
        let ctx = AtaContext::serial();
        let f32_plan = ctx.plan::<f32>(64, 48);
        let f64_plan = ctx.plan::<f64>(64, 48);
        assert_eq!(
            f32_plan.cache().words,
            CacheConfig::for_scalar::<f32>().words
        );
        assert_eq!(
            f64_plan.cache().words,
            CacheConfig::for_scalar::<f64>().words
        );
        // An explicit override pins both scalar types.
        let pinned = AtaContext::builder().cache_words(64).build();
        assert_eq!(pinned.plan::<f32>(16, 8).cache().words, 64);
        assert_eq!(pinned.plan::<f64>(16, 8).cache().words, 64);
        // The context-level accessor still reports the process default.
        assert_eq!(ctx.cache().words, CacheConfig::default().words);
    }

    #[test]
    fn plan_cache_memoizes_by_shape_output_and_scalar() {
        let ctx = AtaContext::builder().cache_words(32).build();
        assert_eq!(ctx.plan_cache_len(), 0);
        let _p1 = ctx.plan_with::<f64>(24, 16, Output::Gram);
        let misses = ctx.plan_cache_misses();
        assert_eq!(ctx.plan_cache_len(), 1);
        // Same key: a hit, no new core.
        let _p2 = ctx.plan_with::<f64>(24, 16, Output::Gram);
        assert_eq!(ctx.plan_cache_len(), 1);
        assert_eq!(ctx.plan_cache_misses(), misses);
        assert!(ctx.plan_cache_hits() >= 1);
        // Different output, scalar or shape: distinct cores.
        let _p3 = ctx.plan_with::<f64>(24, 16, Output::Lower);
        let _p4 = ctx.plan_with::<f32>(24, 16, Output::Gram);
        let _p5 = ctx.plan_with::<f64>(25, 16, Output::Gram);
        assert_eq!(ctx.plan_cache_len(), 4);
        // Clearing keeps handed-out plans working.
        let a = gen::standard::<f64>(3, 24, 16);
        ctx.clear_plan_cache();
        assert_eq!(ctx.plan_cache_len(), 0);
        let g = _p2.execute(a.as_ref()).into_dense();
        assert!(g.max_abs_diff_lower(&oracle(&a)) < 1e-10);
    }

    #[test]
    fn cached_plan_reuse_is_bit_identical() {
        let ctx = AtaContext::builder().cache_words(16).build();
        let a = gen::standard::<f64>(9, 30, 20);
        let first = ctx.plan::<f64>(30, 20).execute(a.as_ref()).into_dense();
        let second = ctx.plan::<f64>(30, 20).execute(a.as_ref()).into_dense();
        assert_eq!(first.max_abs_diff(&second), 0.0);
    }

    #[test]
    #[should_panic(expected = "plan built for")]
    fn wrong_shape_input_rejected() {
        let ctx = AtaContext::serial();
        let plan = ctx.plan::<f64>(16, 8);
        let a = gen::standard::<f64>(1, 8, 8);
        let _ = plan.execute(a.as_ref());
    }
}
