//! Injected time for the serving tier.
//!
//! Retry backoff and submission deadlines must be *testable* — a chaos
//! test cannot wait out real exponential backoff, and deterministic
//! replays cannot read the wall clock. Library code therefore never
//! calls `Instant::now()` or `thread::sleep` directly; it goes through
//! a [`Clock`] injected at service-build time. Production uses
//! [`WallClock`] (the default); tests and the chaos harness use
//! [`ManualClock`], where `sleep` *advances* the clock instantly — a
//! retry loop with seconds of modeled backoff runs in microseconds and
//! produces the same schedule every time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source plus a way to wait on it.
///
/// `now` is measured from an arbitrary per-clock epoch; only
/// differences are meaningful. `sleep` blocks the calling thread on a
/// wall clock, and merely advances time on a manual one.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Monotonic time since this clock's epoch.
    fn now(&self) -> Duration;
    /// Wait for `d` of this clock's time.
    fn sleep(&self, d: Duration);
}

/// The production clock: monotonic wall time, real sleeps.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock with its epoch at construction time.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A deterministic clock for tests and chaos runs: time only moves when
/// something sleeps on it (or [`ManualClock::advance`] is called), and
/// `sleep` returns immediately after advancing — modeled backoff costs
/// no wall time.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
            Ordering::SeqCst,
        );
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_sleep_advances_instantly() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        let wall = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(1), "sleep blocked");
        assert_eq!(clock.now(), Duration::from_secs(3600));
        clock.advance(Duration::from_millis(1));
        assert_eq!(clock.now(), Duration::from_millis(3_600_001));
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<std::sync::Arc<dyn Clock>> = vec![
            std::sync::Arc::new(WallClock::new()),
            std::sync::Arc::new(ManualClock::new()),
        ];
        for c in &clocks {
            let _ = c.now();
        }
    }
}
