//! Streaming Gram accumulation: [`GramAccumulator`].
//!
//! The paper's algorithms assume the whole of `A` is resident before the
//! computation starts. Production Gram workloads — covariance and PCA
//! over event streams, ridge regression over logs — see `A` arrive as
//! *row chunks*, and the Gram matrix has exactly the structure that
//! makes this cheap: `A^T A = Σᵢ Aᵢ^T Aᵢ` over any row partition
//! (Dumas–Pernet–Sedoglavic's rank-update view of `A·Aᵀ`). An
//! accumulator therefore never needs to materialize `A`: it folds each
//! chunk into a running `n x n` lower triangle and throws the chunk
//! away, so a billion-row Gram costs `O(n²)` resident memory.
//!
//! Each chunk is routed by height: chunks that fit the calibrated cache
//! budget run as one direct β = 1 [`ata_kernels::syrk_ln_beta`] rank
//! update (no recursion, no workspace); taller chunks go through the
//! full Strassen/AtA machinery of the owning context — its backend,
//! worker pool, arena cache and shape-keyed plan cache — via the plans'
//! accumulate mode ([`crate::AtaPlan::execute_accumulate`]). At steady
//! state (a stable chunk shape) a push allocates nothing: arenas come
//! from the context pool, packing buffers are thread-cached, and the
//! accumulator buffer is fixed at construction.

use ata_core::chunk_rows_for_budget;
use ata_kernels::syrk_ln_beta;
use ata_mat::{MatRef, Matrix, Scalar, SymPacked};
use ata_strassen::ArenaStats;

use crate::context::{AtaContext, AtaOutput, Output};

/// Streaming accumulator for `C = A^T A` over row chunks of `A`.
///
/// Built from an [`AtaContext`] for a fixed column count `n`; ingests
/// chunks via [`GramAccumulator::push`] and yields the accumulated Gram
/// matrix via [`GramAccumulator::snapshot`] (non-destructive) or
/// [`GramAccumulator::finish`] (consuming). Weighted streams use
/// [`GramAccumulator::push_scaled`]; sliding-window/forgetting-factor
/// estimators use [`GramAccumulator::decay`].
///
/// # Example
///
/// ```
/// use ata::stream::GramAccumulator;
/// use ata::AtaContext;
/// use ata::mat::gen;
///
/// let ctx = AtaContext::serial();
/// let mut acc = ctx.gram_accumulator::<f64>(32);
/// // 10 chunks of 50 rows each: one million-row stream would look the
/// // same — only the 32 x 32 accumulator is ever resident.
/// for seed in 0..10 {
///     let chunk = gen::standard::<f64>(seed, 50, 32);
///     acc.push(chunk.as_ref());
/// }
/// assert_eq!(acc.rows(), 500);
/// let g = acc.finish().into_dense();
/// assert!(g.is_symmetric(0.0));
/// ```
#[derive(Debug)]
pub struct GramAccumulator<T: Scalar> {
    ctx: AtaContext,
    n: usize,
    output: Output,
    /// Chunks of at most this many rows take the direct syrk path.
    thin_rows: usize,
    /// Zero-padded staging buffer for tall pushes: irregular chunk
    /// heights are rounded up to a power-of-two bucket before planning,
    /// so the context's plan cache sees `O(log max_height)` distinct
    /// shapes instead of one per height. Lazily sized to the current
    /// bucket.
    pad: Matrix<T>,
    /// The running lower triangle (strict upper stays zero).
    c: Matrix<T>,
    rows: usize,
    pushes: usize,
    retracts: usize,
    thin_pushes: usize,
    tall_pushes: usize,
}

impl AtaContext {
    /// Create a streaming accumulator for `n`-column row chunks with the
    /// default [`Output::Gram`] selector. See [`GramAccumulator`].
    pub fn gram_accumulator<T: Scalar + 'static>(&self, n: usize) -> GramAccumulator<T> {
        self.gram_accumulator_with(n, Output::Gram)
    }

    /// [`AtaContext::gram_accumulator`] with an explicit [`Output`]
    /// selector for the finished result.
    pub fn gram_accumulator_with<T: Scalar + 'static>(
        &self,
        n: usize,
        output: Output,
    ) -> GramAccumulator<T> {
        GramAccumulator {
            ctx: self.clone(),
            n,
            output,
            thin_rows: chunk_rows_for_budget(n, &self.cache_for::<T>()),
            pad: Matrix::zeros(0, 0),
            c: Matrix::zeros(n, n),
            rows: 0,
            pushes: 0,
            retracts: 0,
            thin_pushes: 0,
            tall_pushes: 0,
        }
    }
}

impl<T: Scalar + 'static> GramAccumulator<T> {
    /// Fold a row chunk into the running Gram matrix:
    /// `C_low += chunk^T chunk`.
    ///
    /// Thin chunks (up to [`GramAccumulator::thin_rows`] rows, the
    /// calibrated cache budget) run as one direct β = 1 syrk rank
    /// update; taller chunks run through the context's Strassen engine
    /// in accumulate mode, zero-padded to the next power-of-two height
    /// bucket so the context's plan cache stays bounded no matter how
    /// irregular the stream's chunk heights are. Empty chunks are
    /// no-ops.
    ///
    /// # Panics
    /// If the chunk does not have exactly `n` columns.
    pub fn push(&mut self, chunk: MatRef<'_, T>) {
        self.push_scaled(T::ONE, chunk);
    }

    /// [`GramAccumulator::push`] with a weight:
    /// `C_low += alpha * chunk^T chunk` — importance-weighted samples
    /// without a pre-scaling pass over the chunk.
    ///
    /// # Panics
    /// If the chunk does not have exactly `n` columns.
    pub fn push_scaled(&mut self, alpha: T, chunk: MatRef<'_, T>) {
        if chunk.rows() == 0 {
            return;
        }
        self.pushes += 1;
        self.rows += chunk.rows();
        self.fold(alpha, chunk);
    }

    /// Remove a row chunk from the accumulated mass:
    /// `C_low -= chunk^T chunk` — the sliding-window complement of
    /// [`GramAccumulator::push`]. The caller is responsible for only
    /// retracting chunks that were previously pushed (the accumulator
    /// keeps no history); over-retracting produces an indefinite `C`
    /// which downstream factorizations report as a typed error.
    /// Decrements [`GramAccumulator::rows`].
    ///
    /// # Panics
    /// If the chunk does not have exactly `n` columns.
    pub fn retract(&mut self, chunk: MatRef<'_, T>) {
        if chunk.rows() == 0 {
            return;
        }
        self.retracts += 1;
        self.rows = self.rows.saturating_sub(chunk.rows());
        self.fold(T::NEG_ONE, chunk);
    }

    /// Shared chunk routing of push/retract: fold
    /// `alpha * chunk^T chunk` into the lower triangle, with no
    /// row/push bookkeeping.
    fn fold(&mut self, alpha: T, chunk: MatRef<'_, T>) {
        let (m, n) = chunk.shape();
        assert_eq!(
            n, self.n,
            "accumulator built for {} columns, chunk has {n}",
            self.n
        );
        if m <= self.thin_rows {
            self.thin_pushes += 1;
            syrk_ln_beta(alpha, T::ONE, chunk, &mut self.c.as_mut());
        } else {
            self.tall_pushes += 1;
            // Round the height up to its power-of-two bucket before
            // planning: a stream of irregular chunk heights would
            // otherwise insert one plan per distinct height and grow the
            // context's plan cache without bound. The padding rows stay
            // zero and contribute nothing to `chunk^T chunk`.
            let bucket = m.next_power_of_two();
            if bucket == m {
                let core = self.ctx.auto_core::<T>(m, n, Output::Lower);
                self.ctx
                    .accumulate_core(&core, alpha, chunk, &mut self.c.as_mut());
            } else {
                if self.pad.shape() != (bucket, n) {
                    self.pad = Matrix::zeros(bucket, n);
                }
                for i in 0..m {
                    self.pad.row_mut(i).copy_from_slice(chunk.row(i));
                }
                // The buffer is reused across pushes; rows past this
                // chunk may hold a previous (taller) chunk's data.
                for i in m..bucket {
                    self.pad.row_mut(i).fill(T::ZERO);
                }
                let core = self.ctx.auto_core::<T>(bucket, n, Output::Lower);
                self.ctx
                    .accumulate_core(&core, alpha, self.pad.as_ref(), &mut self.c.as_mut());
            }
        }
    }

    /// Scale the accumulated triangle by `beta` — the forgetting-factor
    /// step of an exponentially-weighted (sliding-window) Gram
    /// estimator: call `decay(λ)` once per epoch, then keep pushing.
    /// Does not change [`GramAccumulator::rows`].
    pub fn decay(&mut self, beta: T) {
        for i in 0..self.n {
            for cv in &mut self.c.row_mut(i)[..=i] {
                *cv = beta * *cv;
            }
        }
    }

    /// Zero the accumulator (and the ingested-row count), keeping the
    /// buffer, the context resources and the push statistics.
    pub fn reset(&mut self) {
        self.c.as_mut().fill_zero();
        self.rows = 0;
    }

    /// Column count `n` (the order of the accumulated Gram matrix).
    pub fn order(&self) -> usize {
        self.n
    }

    /// Total rows ingested since construction (or the last
    /// [`GramAccumulator::reset`]).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total non-empty chunks ingested.
    pub fn pushes(&self) -> usize {
        self.pushes
    }

    /// Total non-empty chunks retracted via
    /// [`GramAccumulator::retract`].
    pub fn retracts(&self) -> usize {
        self.retracts
    }

    /// Borrow the running lower triangle (the strictly-upper part is
    /// zero) without copying — the hook the streaming factorization
    /// tier uses to refactor in place.
    pub fn as_lower(&self) -> MatRef<'_, T> {
        self.c.as_ref()
    }

    /// Chunks that took the direct syrk rank-update path.
    pub fn thin_pushes(&self) -> usize {
        self.thin_pushes
    }

    /// Chunks that went through the Strassen engine.
    pub fn tall_pushes(&self) -> usize {
        self.tall_pushes
    }

    /// The thin/tall routing threshold in rows: chunks up to this height
    /// run as one direct syrk rank update.
    pub fn thin_rows(&self) -> usize {
        self.thin_rows
    }

    /// Allocation counters of the context's Strassen arena pool for `T`
    /// — the steady-state hook: across same-shape pushes after warm-up,
    /// `misses` and `grows` must not move (property-tested in
    /// `tests/serving.rs`).
    pub fn arena_stats(&self) -> ArenaStats {
        self.ctx.arena_pool::<T>().stats()
    }

    /// This thread's packed-kernel buffer footprint in elements —
    /// stable across steady-state pushes (the buffers are grown once and
    /// kept for the life of the thread).
    pub fn pack_footprint_elems(&self) -> usize {
        ata_kernels::pack::thread_buf_elems::<T>()
    }

    /// The context this accumulator executes through.
    pub fn context(&self) -> &AtaContext {
        &self.ctx
    }

    /// A copy of the current accumulated result, per the accumulator's
    /// [`Output`] selector; streaming continues unaffected — the
    /// serving pattern for periodic checkpoints of a live estimator.
    pub fn snapshot(&self) -> AtaOutput<T> {
        finish_lower(self.c.clone(), self.output)
    }

    /// Consume the accumulator and return the accumulated result, per
    /// its [`Output`] selector.
    pub fn finish(self) -> AtaOutput<T> {
        finish_lower(self.c, self.output)
    }
}

/// Shape a lower-triangle accumulator buffer into the requested output.
fn finish_lower<T: Scalar>(mut c: Matrix<T>, output: Output) -> AtaOutput<T> {
    match output {
        Output::Gram => {
            c.mirror_lower_to_upper();
            AtaOutput::Dense(c)
        }
        Output::Lower => AtaOutput::Dense(c),
        Output::Packed => AtaOutput::Packed(SymPacked::from_lower(&c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};
    use std::num::NonZeroUsize;

    fn oracle(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.cols();
        let mut c = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        c
    }

    /// Stack the chunks back into one matrix for the oracle.
    fn vstack(chunks: &[Matrix<f64>], n: usize) -> Matrix<f64> {
        let rows: usize = chunks.iter().map(|c| c.rows()).sum();
        let mut a = Matrix::zeros(rows, n);
        let mut r0 = 0;
        for ch in chunks {
            for i in 0..ch.rows() {
                a.row_mut(r0 + i).copy_from_slice(ch.row(i));
            }
            r0 += ch.rows();
        }
        a
    }

    #[test]
    fn chunked_accumulation_matches_one_shot() {
        let ctx = AtaContext::builder().cache_words(64).build();
        let n = 24usize;
        let chunks: Vec<Matrix<f64>> = [3usize, 40, 1, 17, 64, 5]
            .iter()
            .enumerate()
            .map(|(i, &m)| gen::standard::<f64>(i as u64, m, n))
            .collect();
        let mut acc = ctx.gram_accumulator::<f64>(n);
        for ch in &chunks {
            acc.push(ch.as_ref());
        }
        assert_eq!(acc.rows(), 130);
        assert_eq!(acc.pushes(), 6);
        assert!(acc.thin_pushes() >= 1 && acc.tall_pushes() >= 1);
        let g = acc.finish().into_dense();
        let a = vstack(&chunks, n);
        let tol = ata_mat::ops::product_tol::<f64>(a.rows(), n, a.rows() as f64);
        assert!(g.max_abs_diff_lower(&oracle(&a)) <= tol);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn shared_backend_accumulates_tall_chunks_on_the_pool() {
        let ctx = AtaContext::builder()
            .threads(NonZeroUsize::new(3).unwrap())
            .cache_words(32)
            .build();
        let n = 20usize;
        let mut acc = ctx.gram_accumulator::<f64>(n);
        let chunks: Vec<Matrix<f64>> = (0..4)
            .map(|i| gen::standard::<f64>(100 + i, 48, n))
            .collect();
        for ch in &chunks {
            acc.push(ch.as_ref());
        }
        assert_eq!(acc.tall_pushes(), 4);
        let g = acc.finish().into_dense();
        let a = vstack(&chunks, n);
        assert!(g.max_abs_diff_lower(&oracle(&a)) < 1e-10);
    }

    #[test]
    fn snapshot_is_a_checkpoint_not_a_drain() {
        let ctx = AtaContext::serial();
        let n = 8usize;
        let mut acc = ctx.gram_accumulator::<f64>(n);
        let c1 = gen::standard::<f64>(1, 10, n);
        let c2 = gen::standard::<f64>(2, 10, n);
        acc.push(c1.as_ref());
        let mid = acc.snapshot().into_dense();
        acc.push(c2.as_ref());
        let end = acc.finish().into_dense();
        assert!(mid.max_abs_diff_lower(&oracle(&c1)) < 1e-12);
        let both = vstack(&[c1, c2], n);
        assert!(end.max_abs_diff_lower(&oracle(&both)) < 1e-12);
    }

    #[test]
    fn push_scaled_weights_each_chunk() {
        let ctx = AtaContext::builder().cache_words(16).build();
        let n = 12usize;
        let tall = gen::standard::<f64>(7, 30, n); // above the 16-word budget
        let thin = gen::standard::<f64>(8, 1, n);
        let mut acc = ctx.gram_accumulator::<f64>(n);
        acc.push_scaled(0.5, tall.as_ref());
        acc.push_scaled(-2.0, thin.as_ref());
        let got = acc.finish().into_dense();
        let mut want = Matrix::zeros(n, n);
        reference::syrk_ln(0.5, tall.as_ref(), &mut want.as_mut());
        reference::syrk_ln(-2.0, thin.as_ref(), &mut want.as_mut());
        assert!(got.max_abs_diff_lower(&want) < 1e-10);
    }

    #[test]
    fn decay_applies_a_forgetting_factor() {
        let ctx = AtaContext::serial();
        let n = 6usize;
        let c1 = gen::standard::<f64>(3, 9, n);
        let c2 = gen::standard::<f64>(4, 9, n);
        let mut acc = ctx.gram_accumulator::<f64>(n);
        acc.push(c1.as_ref());
        acc.decay(0.5);
        acc.push(c2.as_ref());
        let got = acc.finish().into_dense();
        let mut want = Matrix::zeros(n, n);
        reference::syrk_ln(0.5, c1.as_ref(), &mut want.as_mut());
        reference::syrk_ln(1.0, c2.as_ref(), &mut want.as_mut());
        assert!(got.max_abs_diff_lower(&want) < 1e-12);
    }

    #[test]
    fn retract_is_the_inverse_of_push() {
        let ctx = AtaContext::builder().cache_words(16).build();
        let n = 10usize;
        let keep = gen::standard::<f64>(1, 30, n); // tall: Strassen path
        let window = gen::standard::<f64>(2, 4, n); // thin: syrk path
        let mut acc = ctx.gram_accumulator::<f64>(n);
        acc.push(keep.as_ref());
        let before = acc.snapshot().into_dense();
        acc.push(window.as_ref());
        acc.retract(window.as_ref());
        assert_eq!(acc.rows(), 30);
        assert_eq!(acc.retracts(), 1);
        let after = acc.snapshot().into_dense();
        assert!(after.max_abs_diff_lower(&before) < 1e-12);
        // The borrow accessor exposes the same triangle snapshot copies.
        assert_eq!(acc.as_lower().rows(), n);
        assert_eq!(*acc.as_lower().at(3, 2), after[(3, 2)]);
    }

    #[test]
    fn reset_clears_rows_and_result() {
        let ctx = AtaContext::serial();
        let mut acc = ctx.gram_accumulator::<f64>(4);
        acc.push(gen::standard::<f64>(1, 5, 4).as_ref());
        acc.reset();
        assert_eq!(acc.rows(), 0);
        let g = acc.finish().into_dense();
        assert_eq!(g.as_ref().max_abs(), 0.0);
    }

    #[test]
    fn output_selectors_agree() {
        let ctx = AtaContext::serial();
        let n = 10usize;
        let chunk = gen::standard::<f64>(5, 25, n);
        let mk = |output| {
            let mut acc = ctx.gram_accumulator_with::<f64>(n, output);
            acc.push(chunk.as_ref());
            acc.finish()
        };
        let gram = mk(Output::Gram).into_dense();
        let lower = mk(Output::Lower).into_dense();
        let packed = mk(Output::Packed).into_packed();
        assert!(gram.is_symmetric(0.0));
        for i in 0..n {
            for j in 0..n {
                if j > i {
                    assert_eq!(lower[(i, j)], 0.0);
                } else {
                    assert_eq!(lower[(i, j)], gram[(i, j)]);
                    assert_eq!(packed.get(i, j), gram[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn steady_state_pushes_do_not_allocate_arenas() {
        let ctx = AtaContext::builder().cache_words(16).build();
        let n = 12usize;
        let mut acc = ctx.gram_accumulator::<f64>(n);
        // Warm-up push (plans, warms and caches everything).
        acc.push(gen::standard::<f64>(0, 40, n).as_ref());
        let warm_stats = acc.arena_stats();
        let warm_pack = acc.pack_footprint_elems();
        for seed in 1..6u64 {
            acc.push(gen::standard::<f64>(seed, 40, n).as_ref());
        }
        let s = acc.arena_stats();
        assert_eq!(s.misses, warm_stats.misses, "no fresh arena allocations");
        assert_eq!(s.grows, warm_stats.grows, "no arena regrowth");
        assert_eq!(s.checkouts, warm_stats.checkouts + 5);
        assert_eq!(acc.pack_footprint_elems(), warm_pack);
    }

    #[test]
    fn irregular_heights_keep_the_plan_cache_bounded() {
        // 1000 pushes with pseudo-random heights in [1, 128]: without
        // height bucketing every distinct tall height would miss the
        // plan cache once, ~100+ entries; with power-of-two buckets the
        // tall path can plan at most log2(128) = 7 shapes (plus
        // whatever the accumulate path plans per shape internally).
        let ctx = AtaContext::builder().cache_words(16).build();
        let n = 8usize;
        let mut acc = ctx.gram_accumulator::<f64>(n);
        let mut want = Matrix::zeros(n, n);
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..1000 {
            // xorshift64*; heights 1..=128.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let m = 1 + (x.wrapping_mul(0x2545f4914f6cdd1d) >> 57) as usize % 128;
            let chunk = gen::standard::<f64>(x, m, n);
            reference::syrk_ln(1.0, chunk.as_ref(), &mut want.as_mut());
            acc.push(chunk.as_ref());
        }
        assert!(
            acc.tall_pushes() > 100,
            "the stream must exercise the tall path"
        );
        let misses = ctx.plan_cache_misses();
        assert!(
            misses <= 16,
            "plan cache must stay bounded under irregular heights, got {misses} misses"
        );
        let got = acc.finish().into_dense();
        let tol = ata_mat::ops::product_tol::<f64>(128, n, 1000.0 * 128.0);
        assert!(
            got.max_abs_diff_lower(&want) <= tol,
            "padding must not change the sum"
        );
    }

    #[test]
    fn empty_chunks_are_noops() {
        let ctx = AtaContext::serial();
        let mut acc = ctx.gram_accumulator::<f64>(5);
        acc.push(Matrix::<f64>::zeros(0, 5).as_ref());
        assert_eq!(acc.pushes(), 0);
        assert_eq!(acc.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "accumulator built for 4 columns")]
    fn wrong_width_chunk_rejected() {
        let ctx = AtaContext::serial();
        let mut acc = ctx.gram_accumulator::<f64>(4);
        acc.push(gen::standard::<f64>(1, 3, 5).as_ref());
    }
}
