//! Batched execution of many small Gram problems: [`BatchPlan`].
//!
//! The Strassen literature's amortization lesson (Huang et al.'s
//! BLIS-Strassen) cuts two ways: within one large product, pack and
//! reuse; across *floods of small products*, the packing, planning and
//! dispatch overhead dominates the arithmetic, so the wins come from
//! planning each shape once and keeping the worker pool busy with whole
//! problems. [`BatchPlan`] is that second regime as an API: plan a set
//! of (possibly heterogeneous) shapes once, then
//! [`BatchPlan::execute_batch`] schedules **one problem per worker** —
//! no intra-problem splitting — across the context's persistent pool,
//! with per-shape plan cores shared through the context's shape-keyed
//! plan cache and per-worker Strassen arenas from its arena pool.
//!
//! For problems small enough that a single worker holds the whole
//! working set in cache, this beats splitting each problem across the
//! pool: there is no fork/join barrier per problem and no cross-worker
//! traffic inside one product.

use std::sync::{Arc, Mutex};

use ata_mat::{MatRef, Scalar};
use rayon::prelude::*;

use crate::context::{lock_recover, AtaContext, AtaOutput, Output, PlanCore};

/// A reusable plan for a *set* of Gram problems, executed as whole
/// problems across the context's worker pool.
///
/// Created by [`AtaContext::batch_plan`]. The shapes may be
/// heterogeneous; each slot gets the cached serial-leaf plan core for
/// its shape, so planning a batch that repeats shapes (the common
/// serving case) costs one real planning pass per *distinct* shape.
///
/// # Example
///
/// ```
/// use ata::{AtaContext, Output};
/// use ata::mat::gen;
/// use std::num::NonZeroUsize;
///
/// let ctx = AtaContext::shared(NonZeroUsize::new(2).unwrap());
/// // Eight 48 x 16 grams + one odd 30 x 8: planned once...
/// let mut shapes = vec![(48, 16); 8];
/// shapes.push((30, 8));
/// let batch = ctx.batch_plan::<f64>(&shapes, Output::Gram);
/// // ...executed as a unit, one problem per pool worker.
/// let inputs: Vec<_> = (0..9u64)
///     .map(|s| gen::standard::<f64>(s, batch.shape(s as usize).0, batch.shape(s as usize).1))
///     .collect();
/// let refs: Vec<_> = inputs.iter().map(|a| a.as_ref()).collect();
/// let outs = batch.execute_batch(&refs);
/// assert_eq!(outs.len(), 9);
/// assert_eq!(outs[8].order(), 8);
/// ```
#[derive(Debug)]
pub struct BatchPlan<T: Scalar> {
    ctx: AtaContext,
    cores: Vec<Arc<PlanCore<T>>>,
}

impl AtaContext {
    /// Plan a batch of `(m, n)` Gram problems for batched execution.
    /// See [`BatchPlan`].
    pub fn batch_plan<T: Scalar + 'static>(
        &self,
        shapes: &[(usize, usize)],
        output: Output,
    ) -> BatchPlan<T> {
        BatchPlan {
            ctx: self.clone(),
            cores: shapes
                .iter()
                .map(|&(m, n)| self.serial_leaf_core::<T>(m, n, output))
                .collect(),
        }
    }
}

impl<T: Scalar + 'static> BatchPlan<T> {
    /// Number of problem slots in the batch.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the batch has no slots.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Planned `(m, n)` shape of slot `i`.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn shape(&self, i: usize) -> (usize, usize) {
        self.cores[i].planned_shape()
    }

    /// The batch's output selector.
    pub fn output(&self) -> Output {
        self.cores
            .first()
            .map(|c| c.planned_output())
            .unwrap_or_default()
    }

    /// The context this batch executes through.
    pub fn context(&self) -> &AtaContext {
        &self.ctx
    }

    /// Execute every slot against its input, scheduling whole problems
    /// as top-level tasks across the persistent worker pool (the
    /// context's dedicated pool for a shared backend, the process-global
    /// pool otherwise). Results come back in slot order.
    ///
    /// Numerically this is bit-identical to executing each slot's plan
    /// in a serial loop: parallelism is *between* problems, and each
    /// problem runs the same serial recursion either way (property-
    /// tested in `tests/serving.rs`).
    ///
    /// # Panics
    /// If `inputs.len() != self.len()` or any input is not its slot's
    /// planned shape.
    pub fn execute_batch(&self, inputs: &[MatRef<'_, T>]) -> Vec<AtaOutput<T>> {
        assert_eq!(
            inputs.len(),
            self.cores.len(),
            "batch planned for {} problems, got {} inputs",
            self.cores.len(),
            inputs.len()
        );
        let slots: Vec<Mutex<Option<AtaOutput<T>>>> =
            (0..inputs.len()).map(|_| Mutex::new(None)).collect();
        let run = || {
            (0..inputs.len())
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|i| {
                    let out = self.ctx.execute_core(&self.cores[i], inputs[i]);
                    *lock_recover(&slots[i]) = Some(out);
                });
        };
        match self.ctx.worker_pool() {
            Some(pool) => pool.install(run),
            None => run(),
        }
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    // ata-lint: allow(no-unwrap-in-lib): the par_iter
                    // above filled every slot, or it panicked and this
                    // line was never reached.
                    .expect("every slot filled")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference, Matrix};
    use std::num::NonZeroUsize;

    fn oracle(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.cols();
        let mut c = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        c.mirror_lower_to_upper();
        c
    }

    #[test]
    fn heterogeneous_batch_matches_oracles() {
        let ctx = AtaContext::shared(NonZeroUsize::new(4).unwrap());
        let shapes = [(40usize, 24usize), (16, 16), (64, 8), (7, 5)];
        let batch = ctx.batch_plan::<f64>(&shapes, Output::Gram);
        let inputs: Vec<Matrix<f64>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n))| gen::standard::<f64>(i as u64, m, n))
            .collect();
        let refs: Vec<_> = inputs.iter().map(|a| a.as_ref()).collect();
        let outs = batch.execute_batch(&refs);
        assert_eq!(outs.len(), 4);
        for (i, out) in outs.into_iter().enumerate() {
            let g = out.into_dense();
            assert!(
                g.max_abs_diff(&oracle(&inputs[i])) < 1e-10,
                "slot {i} wrong"
            );
        }
    }

    #[test]
    fn batch_is_bit_identical_to_serial_plan_loop() {
        let ctx = AtaContext::shared(NonZeroUsize::new(3).unwrap());
        let shapes = vec![(32usize, 20usize); 6];
        let batch = ctx.batch_plan::<f64>(&shapes, Output::Lower);
        let inputs: Vec<Matrix<f64>> = (0..6).map(|i| gen::standard::<f64>(i, 32, 20)).collect();
        let refs: Vec<_> = inputs.iter().map(|a| a.as_ref()).collect();
        let batched = batch.execute_batch(&refs);
        for (i, out) in batched.into_iter().enumerate() {
            // The serial loop comparator: same serial-leaf recursion,
            // one problem at a time.
            let single = ctx
                .batch_plan::<f64>(&shapes[i..=i], Output::Lower)
                .execute_batch(&refs[i..=i])
                .remove(0);
            match (out, single) {
                (AtaOutput::Dense(a), AtaOutput::Dense(b)) => {
                    assert_eq!(a.max_abs_diff(&b), 0.0, "slot {i} not bit-identical");
                }
                _ => panic!("Lower yields dense"),
            }
        }
    }

    #[test]
    fn repeated_shapes_share_one_cached_core() {
        let ctx = AtaContext::serial();
        let misses_before = ctx.plan_cache_misses();
        let batch = ctx.batch_plan::<f64>(&[(33, 17); 12], Output::Gram);
        assert_eq!(batch.len(), 12);
        assert_eq!(
            ctx.plan_cache_misses(),
            misses_before + 1,
            "12 same-shape slots must plan once"
        );
        assert!(ctx.plan_cache_hits() >= 11);
    }

    #[test]
    fn serial_context_batch_runs_on_the_global_pool() {
        let ctx = AtaContext::serial();
        let batch = ctx.batch_plan::<f64>(&[(24, 12); 5], Output::Gram);
        let inputs: Vec<Matrix<f64>> = (0..5).map(|i| gen::standard::<f64>(i, 24, 12)).collect();
        let refs: Vec<_> = inputs.iter().map(|a| a.as_ref()).collect();
        for (i, out) in batch.execute_batch(&refs).into_iter().enumerate() {
            assert!(out.into_dense().max_abs_diff(&oracle(&inputs[i])) < 1e-10);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let ctx = AtaContext::serial();
        let batch = ctx.batch_plan::<f64>(&[], Output::Gram);
        assert!(batch.is_empty());
        assert_eq!(batch.execute_batch(&[]).len(), 0);
    }

    #[test]
    #[should_panic(expected = "batch planned for 2 problems")]
    fn input_count_mismatch_rejected() {
        let ctx = AtaContext::serial();
        let batch = ctx.batch_plan::<f64>(&[(8, 4), (8, 4)], Output::Gram);
        let a = gen::standard::<f64>(1, 8, 4);
        let _ = batch.execute_batch(&[a.as_ref()]);
    }
}
