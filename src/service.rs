//! A blocking job-queue front-end over the plan machinery:
//! [`AtaService`].
//!
//! [`crate::batch::BatchPlan`] answers "I have these problems in hand";
//! a server embedding this library has the harder shape: requests
//! trickle in from many threads, and the throughput win comes from
//! *coalescing* whatever is queued into one batched dispatch across the
//! worker pool. [`AtaService`] packages that loop as a process-level
//! component: a bounded job queue (backpressure via
//! [`AtaService::try_submit`]), a dedicated worker draining the queue
//! into batches of up to `max_batch` jobs, and per-job result handles
//! ([`JobHandle`]) the submitting threads block on.
//!
//! Every outcome is typed: [`JobHandle::wait`] returns
//! `Result<AtaOutput, JobError>`, so a job lost to shutdown or expired
//! past its [`AtaService::submit_with_deadline`] deadline reports *why*
//! instead of silently vanishing. Deadlines are measured on the
//! service's injected [`Clock`] — tests drive them with
//! [`crate::clock::ManualClock`] and never sleep on the wall.
//!
//! Everything heavy is shared through the owning [`AtaContext`]: plan
//! cores come from its shape-keyed plan cache, arenas from its pool,
//! and execution runs on its persistent workers — the service itself
//! owns only the queue and one coordinator thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ata_mat::{Matrix, Scalar};
use crossbeam::channel::{self, TrySendError};

use crate::batch::BatchPlan;
use crate::clock::{Clock, WallClock};
use crate::context::{AtaContext, AtaOutput, Output};

/// Why a job handle carries no result. Shared by [`AtaService`] and
/// [`crate::shard::ShardedService`] handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// The job was caught on panicking shards until the requeue path
    /// gave up: either its own solo dispatch panicked (proven culprit),
    /// the retry budget ran out, or no live shard was left to take it.
    /// `attempts` counts the dispatch attempts that ended in a panic.
    Requeued {
        /// Dispatch attempts that ended in a shard panic.
        attempts: usize,
    },
    /// The job's submission deadline passed before a worker could
    /// execute it (see [`AtaService::submit_with_deadline`]).
    DeadlineExceeded,
    /// The service shut down before the job ran.
    Closed,
    /// An internal invariant failed while executing the job (e.g. the
    /// simulated cluster produced no rank-0 result); the job is failed
    /// instead of panicking the serving lane.
    Internal,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Requeued { attempts } => {
                write!(f, "job failed after {attempts} panicked dispatch attempts")
            }
            JobError::DeadlineExceeded => write!(f, "job deadline passed before execution"),
            JobError::Closed => write!(f, "service shut down before the job ran"),
            JobError::Internal => write!(f, "internal invariant failed while executing the job"),
        }
    }
}

impl std::error::Error for JobError {}

/// One queued job: the operand, the channel its outcome goes back on,
/// and an optional expiry instant on the service clock.
#[derive(Debug)]
struct Job<T: Scalar> {
    a: Matrix<T>,
    resp: channel::Sender<Result<AtaOutput<T>, JobError>>,
    deadline: Option<Duration>,
}

/// Counters of a running service (all monotone).
#[derive(Debug, Default)]
struct Counters {
    jobs: AtomicUsize,
    batches: AtomicUsize,
    largest_batch: AtomicUsize,
    expired: AtomicUsize,
}

/// Snapshot of a service's serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Batched dispatches (each executes 1..=`max_batch` jobs).
    pub batches: usize,
    /// Largest single dispatch observed.
    pub largest_batch: usize,
    /// Jobs answered [`JobError::DeadlineExceeded`] because their
    /// deadline passed while they were queued.
    pub expired_jobs: usize,
}

/// Error returned by [`AtaService::try_submit`]; carries the operand
/// back so the caller can retry, shed or reroute it.
#[derive(Debug)]
pub enum TrySubmitError<T: Scalar> {
    /// The bounded queue is at capacity — the backpressure signal.
    Full(Matrix<T>),
    /// The service worker has shut down.
    Closed(Matrix<T>),
}

/// The result side of a submitted job. [`JobHandle::wait`] blocks until
/// the service's worker has executed (or given up on) the job.
#[derive(Debug)]
pub struct JobHandle<T: Scalar> {
    recv: channel::Receiver<Result<AtaOutput<T>, JobError>>,
}

impl<T: Scalar> JobHandle<T> {
    /// Block until the job's outcome is known: the result, or the
    /// [`JobError`] explaining why there is none. A service that
    /// terminated (worker panic or shutdown) before the job ran reports
    /// [`JobError::Closed`].
    pub fn wait(self) -> Result<AtaOutput<T>, JobError> {
        match self.recv.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(JobError::Closed),
        }
    }

    /// Wait at most `timeout` (wall time) for the outcome. `None` means
    /// the job is still pending — the handle stays valid, so callers
    /// can poll or fall back to a blocking [`JobHandle::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<AtaOutput<T>, JobError>> {
        match self.recv.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(channel::RecvTimeoutError::Timeout) => None,
            Err(channel::RecvTimeoutError::Disconnected) => Some(Err(JobError::Closed)),
        }
    }
}

/// Builder for [`AtaService`] — see [`AtaService::builder`].
#[derive(Debug)]
pub struct AtaServiceBuilder {
    ctx: AtaContext,
    queue_capacity: usize,
    max_batch: usize,
    output: Output,
    clock: Arc<dyn Clock>,
}

impl AtaServiceBuilder {
    /// Start building a service over `ctx` (the context is shared, not
    /// consumed: plans, arenas and workers stay common property).
    /// Equivalent to [`AtaService::builder`], without needing the
    /// scalar type spelled out until [`AtaServiceBuilder::build`].
    pub fn new(ctx: &AtaContext) -> Self {
        AtaServiceBuilder {
            ctx: ctx.clone(),
            queue_capacity: 64,
            max_batch: 32,
            output: Output::Gram,
            clock: Arc::new(WallClock::new()),
        }
    }

    /// Bound on queued (not yet dispatched) jobs; a full queue blocks
    /// [`AtaService::submit`] and rejects [`AtaService::try_submit`].
    /// Default 64.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Most jobs coalesced into one batched dispatch. Default 32.
    ///
    /// # Panics
    /// If zero.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }

    /// Output representation of every result. Default [`Output::Gram`].
    pub fn output(mut self, output: Output) -> Self {
        self.output = output;
        self
    }

    /// The time source deadlines are measured on. Default
    /// [`WallClock`]; tests inject [`crate::clock::ManualClock`] for
    /// deterministic expiry.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Spawn the service worker and return the running service.
    pub fn build<T: Scalar + 'static>(self) -> AtaService<T> {
        let (sender, receiver) = channel::bounded::<Job<T>>(self.queue_capacity);
        let counters = Arc::new(Counters::default());
        let ctx = self.ctx;
        let (max_batch, output) = (self.max_batch, self.output);
        let worker_counters = counters.clone();
        let clock = self.clock.clone();
        let worker = std::thread::Builder::new()
            .name("ata-service".into())
            // The worker is the serving surface itself, not compute
            // parallelism: all kernel work it dispatches still runs in
            // the context's pool, observable to Tracked counting.
            .spawn(move || serve(ctx, receiver, max_batch, output, &worker_counters, &*clock)) // ata-lint: allow(no-raw-spawn): serving thread, compute stays in the pool
            .expect("failed to spawn service worker"); // ata-lint: allow(no-unwrap-in-lib): OS spawn failure at build time is unrecoverable
        AtaService {
            sender: Some(sender),
            worker: Some(worker),
            counters,
            clock: self.clock,
        }
    }
}

/// The worker loop: block for one job, drain whatever else is queued
/// (up to `max_batch`), expire what is past its deadline, execute the
/// rest across the context's pool, answer each submitter.
fn serve<T: Scalar + 'static>(
    ctx: AtaContext,
    receiver: channel::Receiver<Job<T>>,
    max_batch: usize,
    output: Output,
    counters: &Counters,
    clock: &dyn Clock,
) {
    while let Ok(first) = receiver.recv() {
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            match receiver.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        // A job whose deadline passed while queued is answered with the
        // typed expiry instead of burning pool time on a result nobody
        // is waiting for any more.
        let now = clock.now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline.is_some_and(|d| now >= d) {
                counters.expired.fetch_add(1, Ordering::Relaxed);
                let _ = job.resp.send(Err(JobError::DeadlineExceeded));
            } else {
                live.push(job);
            }
        }
        let mut jobs = live;
        if jobs.is_empty() {
            continue;
        }
        // Dispatch largest-first: under a rayon pool the batch's critical
        // path is its biggest job, so starting it first keeps the tail of
        // the batch from serializing behind it. The sort is stable (ties
        // keep arrival order) and each job answers through its own
        // channel, so reordering cannot change any caller's result.
        jobs.sort_by_key(|j| {
            let (m, n) = j.a.shape();
            std::cmp::Reverse(m as u128 * n as u128 * n as u128)
        });
        let shapes: Vec<(usize, usize)> = jobs.iter().map(|j| j.a.shape()).collect();
        // Re-planning is a cache hit for every previously-seen shape.
        let batch: BatchPlan<T> = ctx.batch_plan(&shapes, output);
        let refs: Vec<_> = jobs.iter().map(|j| j.a.as_ref()).collect();
        let results = batch.execute_batch(&refs);
        counters.jobs.fetch_add(jobs.len(), Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .largest_batch
            .fetch_max(jobs.len(), Ordering::Relaxed);
        for (job, result) in jobs.into_iter().zip(results) {
            // A submitter that dropped its handle just doesn't get an
            // answer; the rest of the batch is unaffected.
            let _ = job.resp.send(Ok(result));
        }
    }
}

/// A blocking Gram-serving component: bounded job queue in, batched
/// plan execution out. [`Send`] and [`Sync`] — share it behind an `Arc`
/// (or clone the submitting side of your own fan-in) and submit from
/// any number of threads.
///
/// Dropping the service closes the queue and joins the worker after it
/// drains the jobs already accepted.
///
/// # Example
///
/// ```
/// use ata::AtaContext;
/// use ata::service::{AtaService, AtaServiceBuilder};
/// use ata::mat::gen;
/// use std::num::NonZeroUsize;
///
/// let ctx = AtaContext::shared(NonZeroUsize::new(2).unwrap());
/// let svc: AtaService<f64> = AtaServiceBuilder::new(&ctx).max_batch(8).build();
/// // Submit a burst, then wait on the handles.
/// let handles: Vec<_> = (0..6u64)
///     .map(|seed| svc.submit(gen::standard::<f64>(seed, 32, 16)))
///     .collect();
/// for h in handles {
///     let g = h.wait().expect("service alive").into_dense();
///     assert_eq!(g.shape(), (16, 16));
/// }
/// ```
#[derive(Debug)]
pub struct AtaService<T: Scalar> {
    /// `Some` until shutdown; dropped before joining the worker.
    sender: Option<channel::Sender<Job<T>>>,
    worker: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
    clock: Arc<dyn Clock>,
}

impl<T: Scalar + 'static> AtaService<T> {
    /// Start building a service over `ctx` — see
    /// [`AtaServiceBuilder::new`] (which this forwards to; prefer it
    /// when the scalar type is not yet pinned at the call site).
    pub fn builder(ctx: &AtaContext) -> AtaServiceBuilder {
        AtaServiceBuilder::new(ctx)
    }

    /// Submit a job, blocking while the queue is full (the simple
    /// backpressure mode). Returns the handle to wait on.
    ///
    /// If the worker has terminated (it only does so on panic —
    /// shutdown consumes the service), the job is dropped and the
    /// handle's [`JobHandle::wait`] returns [`JobError::Closed`] rather
    /// than propagating a panic into the submitter.
    pub fn submit(&self, a: Matrix<T>) -> JobHandle<T> {
        self.submit_inner(a, None)
    }

    /// Submit with an expiry: if the job is still queued `deadline`
    /// from now (on the service's injected clock), the worker answers
    /// [`JobError::DeadlineExceeded`] instead of executing it. A job
    /// whose dispatch has already started always runs to completion.
    pub fn submit_with_deadline(&self, a: Matrix<T>, deadline: Duration) -> JobHandle<T> {
        let expiry = self.clock.now().saturating_add(deadline);
        self.submit_inner(a, Some(expiry))
    }

    fn submit_inner(&self, a: Matrix<T>, deadline: Option<Duration>) -> JobHandle<T> {
        let (resp, recv) = channel::unbounded();
        if let Some(sender) = self.sender.as_ref() {
            // On a disconnected queue the job comes back in the error
            // and is dropped here, closing `resp` — `wait` sees
            // `JobError::Closed`.
            let _ = sender.send(Job { a, resp, deadline });
        }
        JobHandle { recv }
    }

    /// Submit without blocking: [`TrySubmitError::Full`] when the
    /// bounded queue is at capacity, handing the operand back — the
    /// load-shedding mode.
    pub fn try_submit(&self, a: Matrix<T>) -> Result<JobHandle<T>, TrySubmitError<T>> {
        let Some(sender) = self.sender.as_ref() else {
            return Err(TrySubmitError::Closed(a));
        };
        let (resp, recv) = channel::unbounded();
        match sender.try_send(Job {
            a,
            resp,
            deadline: None,
        }) {
            Ok(()) => Ok(JobHandle { recv }),
            Err(TrySendError::Full(job)) => Err(TrySubmitError::Full(job.a)),
            Err(TrySendError::Disconnected(job)) => Err(TrySubmitError::Closed(job.a)),
        }
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            largest_batch: self.counters.largest_batch.load(Ordering::Relaxed),
            expired_jobs: self.counters.expired.load(Ordering::Relaxed),
        }
    }

    /// Close the queue, let the worker drain the accepted jobs, and
    /// join it. Equivalent to dropping the service, but explicit and
    /// returning the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        // Dropping the sender disconnects the queue; the worker exits
        // after serving everything already accepted.
        drop(self.sender.take());
        if let Some(worker) = self.worker.take() {
            // A panicked worker already answered nobody; surface it.
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl<T: Scalar> Drop for AtaService<T> {
    fn drop(&mut self) {
        drop(self.sender.take());
        if let Some(worker) = self.worker.take() {
            // Drop must not panic; shutdown() is the loud path.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use ata_mat::{gen, reference};
    use std::num::NonZeroUsize;

    fn oracle(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.cols();
        let mut c = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        c.mirror_lower_to_upper();
        c
    }

    #[test]
    fn serves_a_burst_correctly() {
        let ctx = AtaContext::shared(NonZeroUsize::new(2).unwrap());
        let svc: AtaService<f64> = AtaServiceBuilder::new(&ctx).max_batch(4).build();
        let inputs: Vec<Matrix<f64>> = (0..10).map(|i| gen::standard::<f64>(i, 20, 12)).collect();
        let handles: Vec<_> = inputs.iter().map(|a| svc.submit(a.clone())).collect();
        for (i, h) in handles.into_iter().enumerate() {
            let g = h.wait().expect("alive").into_dense();
            assert!(g.max_abs_diff(&oracle(&inputs[i])) < 1e-10, "job {i}");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.jobs, 10);
        assert!(stats.batches >= 3, "10 jobs / max_batch 4 is >= 3 batches");
        assert!(stats.largest_batch <= 4);
        assert_eq!(stats.expired_jobs, 0);
    }

    #[test]
    fn heterogeneous_shapes_in_one_service() {
        let ctx = AtaContext::serial();
        let svc: AtaService<f64> = AtaServiceBuilder::new(&ctx).build();
        let a = gen::standard::<f64>(1, 16, 8);
        let b = gen::standard::<f64>(2, 40, 24);
        let (ha, hb) = (svc.submit(a.clone()), svc.submit(b.clone()));
        assert!(ha.wait().unwrap().into_dense().max_abs_diff(&oracle(&a)) < 1e-10);
        assert!(hb.wait().unwrap().into_dense().max_abs_diff(&oracle(&b)) < 1e-10);
    }

    #[test]
    fn submit_from_many_threads() {
        let ctx = AtaContext::shared(NonZeroUsize::new(2).unwrap());
        let svc: Arc<AtaService<f64>> =
            Arc::new(AtaServiceBuilder::new(&ctx).queue_capacity(16).build());
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let svc = svc.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..5u64 {
                    let a = gen::standard::<f64>(t * 100 + i, 24, 10);
                    let g = svc.submit(a.clone()).wait().expect("alive").into_dense();
                    assert!(g.max_abs_diff(&oracle(&a)) < 1e-10);
                }
            }));
        }
        for j in joins {
            j.join().expect("submitter");
        }
        let svc = Arc::into_inner(svc).expect("all submitters done");
        assert_eq!(svc.shutdown().jobs, 20);
    }

    #[test]
    fn try_submit_backpressure_reports_full() {
        // A rendezvous-ish queue (capacity 1) with a slow consumer: the
        // first try_submit fills the slot, later ones see Full until
        // the worker drains it.
        let ctx = AtaContext::serial();
        let svc: AtaService<f64> = AtaServiceBuilder::new(&ctx).queue_capacity(1).build();
        let mut accepted = 0usize;
        let mut shed = 0usize;
        let mut handles = Vec::new();
        for i in 0..200u64 {
            match svc.try_submit(gen::standard::<f64>(i, 64, 32)) {
                Ok(h) => {
                    accepted += 1;
                    handles.push(h);
                }
                Err(TrySubmitError::Full(a)) => {
                    shed += 1;
                    assert_eq!(a.shape(), (64, 32), "operand handed back intact");
                }
                Err(TrySubmitError::Closed(_)) => panic!("service must be alive"),
            }
        }
        assert!(accepted > 0, "some jobs must get through");
        for h in handles {
            assert!(h.wait().is_ok());
        }
        // Either the queue was momentarily full at least once, or the
        // worker kept pace with all 200 — both are valid; the invariant
        // is accounting: accepted + shed == 200.
        assert_eq!(accepted + shed, 200);
        assert_eq!(svc.shutdown().jobs, accepted);
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let ctx = AtaContext::serial();
        let svc: AtaService<f64> = AtaServiceBuilder::new(&ctx).queue_capacity(32).build();
        let a = gen::standard::<f64>(7, 30, 15);
        let handles: Vec<_> = (0..8).map(|_| svc.submit(a.clone())).collect();
        let stats = svc.shutdown();
        assert_eq!(stats.jobs, 8, "accepted jobs are served before exit");
        for h in handles {
            assert!(h.wait().is_ok(), "handle answered even after shutdown");
        }
    }

    #[test]
    fn shutdown_under_full_queue_answers_every_accepted_job() {
        // Fill the bounded queue with try_submit, then shut down:
        // every accepted job must be answered — a result or a typed
        // error, never a hang.
        let ctx = AtaContext::serial();
        let svc: AtaService<f64> = AtaServiceBuilder::new(&ctx).queue_capacity(4).build();
        let mut handles = Vec::new();
        for i in 0..64u64 {
            match svc.try_submit(gen::standard::<f64>(i, 48, 24)) {
                Ok(h) => handles.push(h),
                Err(TrySubmitError::Full(_)) => {}
                Err(TrySubmitError::Closed(_)) => panic!("service must be alive"),
            }
        }
        let accepted = handles.len();
        let stats = svc.shutdown();
        assert_eq!(stats.jobs, accepted, "shutdown drains the full queue");
        for h in handles {
            // Waiting on a handle *after* shutdown is the regression
            // under test: the buffered outcome must still be readable.
            assert!(h.wait().is_ok());
        }
    }

    #[test]
    fn zero_deadline_expires_with_typed_error() {
        let ctx = AtaContext::serial();
        let clock = Arc::new(ManualClock::new());
        let svc: AtaService<f64> = AtaServiceBuilder::new(&ctx).clock(clock).build();
        // Deadline "now": already expired when the worker dequeues it.
        let h = svc.submit_with_deadline(gen::standard::<f64>(1, 32, 16), Duration::ZERO);
        assert!(matches!(h.wait(), Err(JobError::DeadlineExceeded)));
        // A generous deadline on an un-advanced manual clock completes.
        let h = svc.submit_with_deadline(gen::standard::<f64>(2, 32, 16), Duration::from_secs(60));
        assert!(h.wait().is_ok());
        let stats = svc.shutdown();
        assert_eq!(stats.expired_jobs, 1);
        assert_eq!(stats.jobs, 1, "the expired job never executed");
    }

    #[test]
    fn wait_timeout_polls_then_delivers() {
        let ctx = AtaContext::serial();
        let svc: AtaService<f64> = AtaServiceBuilder::new(&ctx).build();
        let a = gen::standard::<f64>(5, 64, 32);
        let h = svc.submit(a.clone());
        // Poll until ready (a short timeout may race the worker either
        // way); the handle stays usable across None polls.
        let out = loop {
            match h.wait_timeout(Duration::from_millis(10)) {
                Some(out) => break out,
                None => continue,
            }
        };
        assert!(
            out.expect("completes")
                .into_dense()
                .max_abs_diff(&oracle(&a))
                < 1e-10
        );
        svc.shutdown();
    }

    #[test]
    fn largest_first_dispatch_is_bitwise_answer_preserving() {
        // Serve the same inputs twice: one at a time (each its own
        // batch, no reordering possible) and as one coalesced burst the
        // worker sorts largest-first. Every answer must come back on the
        // right handle and be bit-identical — the sort only permutes
        // dispatch order, never which plan a job runs through.
        let ctx = AtaContext::serial();
        let inputs: Vec<Matrix<f64>> = [(12usize, 6usize), (48, 24), (20, 10), (64, 32), (8, 4)]
            .iter()
            .enumerate()
            .map(|(i, &(m, n))| gen::standard::<f64>(i as u64, m, n))
            .collect();

        let solo: AtaService<f64> = AtaServiceBuilder::new(&ctx).build();
        let expected: Vec<Matrix<f64>> = inputs
            .iter()
            .map(|a| solo.submit(a.clone()).wait().expect("alive").into_dense())
            .collect();
        solo.shutdown();

        let burst: AtaService<f64> = AtaServiceBuilder::new(&ctx)
            .max_batch(inputs.len())
            .queue_capacity(inputs.len())
            .build();
        let handles: Vec<_> = inputs.iter().map(|a| burst.submit(a.clone())).collect();
        for (h, want) in handles.into_iter().zip(&expected) {
            let got = h.wait().expect("alive").into_dense();
            assert_eq!(got.shape(), want.shape(), "answers stay on their handles");
            assert_eq!(
                got.max_abs_diff(want),
                0.0,
                "reordered dispatch must be bit-identical"
            );
        }
        burst.shutdown();
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<AtaService<f64>>();
        assert_send_sync::<AtaService<f32>>();
    }
}
