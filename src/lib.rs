//! # ata — Strassen-based multiplication of a matrix by its transpose
//!
//! A Rust reproduction of Arrigoni, Maggioli, Massini, Rodolà,
//! *“Efficiently Parallelizable Strassen-Based Multiplication of a
//! Matrix by its Transpose”* (ICPP 2021, arXiv:2110.13042), complete
//! with the substrates the paper builds on: BLAS-style kernels, a
//! workspace-arena Strassen, a task-tree scheduler, a shared-memory
//! parallel runtime and a message-passing simulator with a LogGP cost
//! model for the distributed experiments.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`gram`], [`lower`], [`packed`] / [`AtaOptions`] — the high-level
//!   `A^T A` entry points (serial or multi-threaded);
//! * [`core`] (`ata-core`) — Algorithm 1, AtA-S, the task trees and the
//!   flop-count analysis;
//! * [`mat`] (`ata-mat`) — matrices, views, packed symmetric storage,
//!   workload generators, op-counting scalars;
//! * [`kernels`] (`ata-kernels`) — the BLAS substitute;
//! * [`strassen`] (`ata-strassen`) — `C += alpha * A^T B` with a
//!   pre-allocated arena;
//! * [`mpisim`] (`ata-mpisim`) and [`dist`] (`ata-dist`) — the simulated
//!   cluster, AtA-D and the distributed baselines;
//! * [`linalg`] (`ata-linalg`) — the paper's §1 applications as library
//!   code: normal-equations least squares, SVD via the Gram matrix,
//!   Gram–Schmidt orthogonalization.
//!
//! ## Example
//!
//! ```
//! use ata::{gram_with, AtaOptions};
//! use ata::mat::gen;
//!
//! // 256 x 96, entries uniform in [-1, 1), seeded.
//! let a = gen::standard::<f64>(42, 256, 96);
//! // Multi-threaded AtA-S with 4 workers.
//! let g = gram_with(a.as_ref(), &AtaOptions::with_threads(4));
//! assert_eq!(g.shape(), (96, 96));
//! assert!(g.is_symmetric(1e-12));
//! ```

pub use ata_core::{gram, gram_with, lower, lower_with, packed, packed_with, AtaOptions};

/// The paper's core algorithms (`ata-core`).
pub use ata_core as core;
/// Distributed AtA-D and baselines (`ata-dist`).
pub use ata_dist as dist;
/// Exact-arithmetic scalars: rationals and GF(2^31-1) (`ata-field`).
pub use ata_field as field;
/// BLAS-substitute kernels (`ata-kernels`).
pub use ata_kernels as kernels;
/// Downstream applications: least squares, SVD, orthogonalization (`ata-linalg`).
pub use ata_linalg as linalg;
/// Matrix substrate (`ata-mat`).
pub use ata_mat as mat;
/// Message-passing simulator (`ata-mpisim`).
pub use ata_mpisim as mpisim;
/// Arena-based Strassen (`ata-strassen`).
pub use ata_strassen as strassen;

pub use ata_mat::{MatMut, MatRef, Matrix, Scalar, SymPacked};
