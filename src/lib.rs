//! # ata — Strassen-based multiplication of a matrix by its transpose
//!
//! A Rust reproduction of Arrigoni, Maggioli, Massini, Rodolà,
//! *“Efficiently Parallelizable Strassen-Based Multiplication of a
//! Matrix by its Transpose”* (ICPP 2021, arXiv:2110.13042), complete
//! with the substrates the paper builds on: BLAS-style kernels, a
//! workspace-arena Strassen, a task-tree scheduler, a shared-memory
//! parallel runtime and a message-passing simulator with a LogGP cost
//! model for the distributed experiments.
//!
//! ## The plan–execute API
//!
//! The primary entry point is the two-phase [`AtaContext`] /
//! [`AtaPlan`] API: build a context once per configuration (it owns a
//! persistent worker pool and a cache of Strassen arenas), build a plan
//! once per problem shape (it pre-computes the §4.1 task tree and
//! workspace layout), then execute the plan as many times as the
//! workload demands:
//!
//! ```
//! use ata::{AtaContext, Output};
//! use ata::mat::gen;
//! use std::num::NonZeroUsize;
//!
//! // Context: shared-memory AtA-S with 4 persistent workers.
//! let ctx = AtaContext::shared(NonZeroUsize::new(4).unwrap());
//! // Plan: built once for the 256 x 96 shape.
//! let plan = ctx.plan_with::<f64>(256, 96, Output::Gram);
//! // Execute repeatedly — no re-planning, no re-allocation.
//! for seed in 0..3 {
//!     let a = gen::standard::<f64>(seed, 256, 96);
//!     let g = plan.execute(a.as_ref()).into_dense();
//!     assert_eq!(g.shape(), (96, 96));
//!     assert!(g.is_symmetric(1e-12));
//! }
//! ```
//!
//! The [`Backend`] selector drives all three of the paper's algorithm
//! variants through the same plan API — serial Algorithm 1, the
//! shared-memory AtA-S and the simulated-cluster AtA-D:
//!
//! ```
//! use ata::{AtaContext, Backend};
//! use ata::mpisim::CostModel;
//! use ata::mat::gen;
//! use std::num::NonZeroUsize;
//!
//! let a = gen::standard::<f64>(7, 48, 32);
//! let ctx = AtaContext::builder()
//!     .backend(Backend::SimulatedDist {
//!         ranks: NonZeroUsize::new(4).unwrap(),
//!         loggp: CostModel::zero(),
//!     })
//!     .build();
//! let c = ctx.lower(a.as_ref()); // AtA-D on 4 simulated ranks
//! assert_eq!(c.shape(), (32, 32));
//! ```
//!
//! One-shot helpers remain for single calls: [`gram`], [`lower`],
//! [`packed`] run through a lazily-initialized default (serial) context,
//! so even they amortize arena allocation across calls.
//!
//! ## The serving layer
//!
//! Production Gram workloads rarely look like "one matrix, one call".
//! Three front-ends cover the serving shapes, all sharing the context's
//! pool, arenas and shape-keyed plan cache:
//!
//! * [`stream::GramAccumulator`] — `A` arrives as row chunks
//!   (`C += Aᵢ^T Aᵢ`); a billion-row Gram never materializes `A`.
//! * [`factor::FactoredGram`] — the streaming factorization tier: a
//!   live `L D Lᵀ` factor maintained alongside the accumulator by
//!   `O(n²k)` rank-k sweeps, answering `solve`/`ridge`/`logdet`/
//!   `pca_project` in `O(n²)` — submit rows, query solutions, never
//!   refactor.
//! * [`batch::BatchPlan`] — floods of small problems, executed whole,
//!   one per pool worker ([`BatchPlan::execute_batch`]).
//! * [`service::AtaService`] — a `Send + Sync` blocking job queue with
//!   bounded-capacity backpressure, coalescing submissions into batched
//!   dispatches — the component a server embeds.
//!
//! ```
//! use ata::AtaContext;
//! use ata::mat::gen;
//!
//! // Streaming: fold row chunks, never holding the full matrix.
//! let ctx = AtaContext::serial();
//! let mut acc = ctx.gram_accumulator::<f64>(16);
//! for seed in 0..4 {
//!     let chunk = gen::standard::<f64>(seed, 100, 16);
//!     acc.push(chunk.as_ref());
//! }
//! assert_eq!(acc.rows(), 400);
//! assert!(acc.finish().into_dense().is_symmetric(0.0));
//! ```
//!
//! ## Crates
//!
//! * [`core`] (`ata-core`) — Algorithm 1, AtA-S, the task trees and the
//!   flop-count analysis;
//! * [`mat`] (`ata-mat`) — matrices, views, packed symmetric storage,
//!   workload generators, op-counting scalars;
//! * [`kernels`] (`ata-kernels`) — the BLAS substitute;
//! * [`strassen`] (`ata-strassen`) — `C += alpha * A^T B` with a
//!   pre-allocated arena and the [`strassen::ArenaPool`] checkout cache;
//! * [`mpisim`] (`ata-mpisim`) and [`dist`] (`ata-dist`) — the simulated
//!   cluster, AtA-D and the distributed baselines;
//! * [`linalg`] (`ata-linalg`) — the paper's §1 applications as library
//!   code: normal-equations least squares, SVD via the Gram matrix,
//!   Gram–Schmidt orthogonalization.

#![forbid(unsafe_code)]

pub mod batch;
pub mod clock;
pub mod context;
pub mod factor;
pub mod service;
pub mod shard;
pub mod stream;

pub use batch::BatchPlan;
pub use clock::{Clock, ManualClock, WallClock};
pub use context::{
    default_context, AtaContext, AtaContextBuilder, AtaOutput, AtaPlan, Backend, Output, OwnedPlan,
};
pub use factor::FactoredGram;
pub use service::{AtaService, AtaServiceBuilder, JobError, JobHandle, TrySubmitError};
pub use shard::{
    RetryPolicy, ShardJobHandle, ShardStats, ShardSubmitError, ShardedService,
    ShardedServiceBuilder, ShardedStats, SplitChaos,
};
pub use stream::GramAccumulator;

pub use ata_core::AtaOptions;
pub use ata_dist::{DistPlan, WireFormat};

/// The paper's core algorithms (`ata-core`).
pub use ata_core as core;
/// Distributed AtA-D and baselines (`ata-dist`).
pub use ata_dist as dist;
/// Exact-arithmetic scalars: rationals and GF(2^31-1) (`ata-field`).
pub use ata_field as field;
/// BLAS-substitute kernels (`ata-kernels`).
pub use ata_kernels as kernels;
/// Downstream applications: least squares, SVD, orthogonalization (`ata-linalg`).
pub use ata_linalg as linalg;
/// Matrix substrate (`ata-mat`).
pub use ata_mat as mat;
/// Message-passing simulator (`ata-mpisim`).
pub use ata_mpisim as mpisim;
/// Arena-based Strassen (`ata-strassen`).
pub use ata_strassen as strassen;

pub use ata_mat::{MatMut, MatRef, Matrix, Scalar, SymPacked};

/// Full symmetric Gram matrix `A^T A` (both triangles filled) through
/// the lazily-initialized default context.
pub fn gram<T: Scalar + 'static>(a: MatRef<'_, T>) -> Matrix<T> {
    default_context().gram(a)
}

/// Lower-triangular `A^T A` (strictly-upper entries are zero) through
/// the lazily-initialized default context.
pub fn lower<T: Scalar + 'static>(a: MatRef<'_, T>) -> Matrix<T> {
    default_context().lower(a)
}

/// `A^T A` in packed lower-triangular storage (`n(n+1)/2` elements)
/// through the lazily-initialized default context.
pub fn packed<T: Scalar + 'static>(a: MatRef<'_, T>) -> SymPacked<T> {
    default_context().packed(a)
}

/// Full symmetric Gram matrix with explicit legacy options.
#[deprecated(note = "build an AtaContext (AtaContext::builder()) and reuse an AtaPlan instead")]
pub fn gram_with<T: Scalar + 'static>(a: MatRef<'_, T>, opts: &AtaOptions) -> Matrix<T> {
    AtaContext::from_options(opts).gram(a)
}

/// Lower-triangular `A^T A` with explicit legacy options.
#[deprecated(note = "build an AtaContext (AtaContext::builder()) and reuse an AtaPlan instead")]
pub fn lower_with<T: Scalar + 'static>(a: MatRef<'_, T>, opts: &AtaOptions) -> Matrix<T> {
    AtaContext::from_options(opts).lower(a)
}

/// Packed `A^T A` with explicit legacy options.
#[deprecated(note = "build an AtaContext (AtaContext::builder()) and reuse an AtaPlan instead")]
pub fn packed_with<T: Scalar + 'static>(a: MatRef<'_, T>, opts: &AtaOptions) -> SymPacked<T> {
    AtaContext::from_options(opts).packed(a)
}
