//! Streaming factorization tier: [`FactoredGram`] keeps a live
//! `L D Lᵀ` factor *alongside* the accumulated Gram matrix, so the
//! serving layer can answer "submit rows, query solutions" without an
//! `O(n³)` refactor per query.
//!
//! ## Update-or-refactor policy
//!
//! A rank-k sweep costs `~2kn²` flops; a refactor costs `~n³/3`. The
//! crossover is `k ≈ n/6`, so chunks with `6k <= n` update the factor
//! in place and taller chunks just mark it stale — the next query pays
//! one lazy refactor, and consecutive tall pushes coalesce into a
//! single one. Queries between pushes are always `O(n²)`:
//!
//! ```text
//!            push(chunk, k rows)
//!                   │
//!        ┌──────────┴──────────┐
//!    6k ≤ n                 6k > n
//!        │                     │
//!  rank-k sweep          mark stale
//!  O(n²k) now          (no factor work)
//!        │                     │
//!        └──────────┬──────────┘
//!                 solve
//!          O(n²)  /  O(n³/3) once, then O(n²)
//! ```
//!
//! The same policy maintains the λ-shifted factor behind
//! [`FactoredGram::ridge`]: a repeated λ hits a cached factor of
//! `C + λI` that is rank-updated in lockstep with the main factor, so
//! a steady ridge workload never refactors either triangle.
//!
//! Failure is typed, never NaN: retracting more mass than was pushed
//! makes `C` indefinite, which every downdating sweep and every lazy
//! refactor reports as [`UpdateError::Indefinite`] before dividing by
//! the offending pivot.

use ata_linalg::eigen::jacobi_eigen;
use ata_linalg::update::{LdltFactor, UpdateError};
use ata_mat::{MatRef, Matrix, Scalar};

use crate::context::{AtaContext, AtaOutput};
use crate::stream::GramAccumulator;

/// A chunk of `k` rows updates the factor in place iff `6k <= n`
/// (`2kn²` sweep flops vs `n³/3` refactor flops); see the module docs.
const UPDATE_REFACTOR_RATIO: usize = 6;

/// The λ-shifted factor cache behind [`FactoredGram::ridge`].
#[derive(Debug)]
struct ShiftedFactor<T: Scalar> {
    lambda: T,
    factor: LdltFactor<T>,
    /// False after a tall push or a failed sweep: rebuild lazily.
    fresh: bool,
}

/// Cached eigendecomposition behind [`FactoredGram::pca_project`].
#[derive(Debug)]
struct PcaCache {
    eigenvalues: Vec<f64>,
    /// Eigenvectors as columns, descending eigenvalue order.
    eigenvectors: Matrix<f64>,
}

/// A [`GramAccumulator`] that maintains `C = AᵀA` *and* its `L D Lᵀ`
/// factor under the stream operations — the online-regression /
/// online-PCA engine of the serving stack.
///
/// * [`FactoredGram::push`] / [`FactoredGram::push_scaled`] — rank-k
///   factor update in `O(n²k)` (or a deferred refactor for tall
///   chunks; see the module docs for the policy).
/// * [`FactoredGram::decay`] — `O(n)` on the factor (`D → βD`).
/// * [`FactoredGram::retract`] — sliding-window row removal by
///   hyperbolic downdate, failing typed if the window over-shrinks.
/// * [`FactoredGram::solve`] / [`FactoredGram::solve_in_place`] /
///   [`FactoredGram::solve_multi`] — `O(n²)` once the factor is warm;
///   the in-place variant allocates nothing.
/// * [`FactoredGram::ridge`], [`FactoredGram::logdet`],
///   [`FactoredGram::leverage`], [`FactoredGram::pca_project`] —
///   online queries on the factored mass.
///
/// # Example
///
/// ```
/// use ata::AtaContext;
/// use ata::mat::gen;
///
/// let ctx = AtaContext::serial();
/// let mut fg = ctx.factored_gram::<f64>(16);
/// fg.push(gen::standard::<f64>(0, 32, 16).as_ref()); // seed mass
/// fg.solve(&[1.0; 16]).unwrap(); // one lazy O(n³/3) refactor
/// for seed in 1..=40 {
///     let chunk = gen::standard::<f64>(seed, 2, 16);
///     fg.push(chunk.as_ref()); // O(n²·2) rank-2 factor sweep
///     let x = fg.solve(&[1.0; 16]).unwrap(); // O(n²), no refactor
///     assert_eq!(x.len(), 16);
/// }
/// assert_eq!(fg.factor_updates(), 40);
/// assert_eq!(fg.factor_refactors(), 1);
/// ```
#[derive(Debug)]
pub struct FactoredGram<T: Scalar> {
    acc: GramAccumulator<T>,
    factor: Option<LdltFactor<T>>,
    /// True when `factor` reflects the accumulator's current mass.
    fresh: bool,
    shifted: Option<ShiftedFactor<T>>,
    pca: Option<PcaCache>,
    updates: u64,
    refactors: u64,
    downdates: u64,
}

impl AtaContext {
    /// Create a [`FactoredGram`] for `n`-column row chunks, streaming
    /// through this context (its backend, worker pool, arena and plan
    /// caches — the same machinery as
    /// [`AtaContext::gram_accumulator`]).
    pub fn factored_gram<T: Scalar + 'static>(&self, n: usize) -> FactoredGram<T> {
        self.gram_accumulator::<T>(n).into_factored()
    }
}

impl<T: Scalar + 'static> GramAccumulator<T> {
    /// Upgrade this accumulator into a [`FactoredGram`], carrying the
    /// already-accumulated mass (the factor is built lazily at the
    /// first query).
    pub fn into_factored(self) -> FactoredGram<T> {
        FactoredGram {
            acc: self,
            factor: None,
            fresh: false,
            shifted: None,
            pca: None,
            updates: 0,
            refactors: 0,
            downdates: 0,
        }
    }
}

impl<T: Scalar + 'static> FactoredGram<T> {
    /// Column count `n` (the order of the factored Gram matrix).
    pub fn order(&self) -> usize {
        self.acc.order()
    }

    /// Total rows currently accumulated (pushes minus retracts).
    pub fn rows(&self) -> usize {
        self.acc.rows()
    }

    /// The wrapped accumulator (counters, arena stats, context).
    pub fn accumulator(&self) -> &GramAccumulator<T> {
        &self.acc
    }

    /// Discard the factor state and recover the plain accumulator.
    pub fn into_accumulator(self) -> GramAccumulator<T> {
        self.acc
    }

    /// Rank-k factor sweeps applied (chunks that took the `O(n²k)`
    /// path).
    pub fn factor_updates(&self) -> u64 {
        self.updates
    }

    /// Full `O(n³/3)` refactorizations performed (lazy, at query
    /// time).
    pub fn factor_refactors(&self) -> u64 {
        self.refactors
    }

    /// Downdating sweeps applied (retracts and negative-weight
    /// pushes).
    pub fn factor_downdates(&self) -> u64 {
        self.downdates
    }

    /// Does a `k`-row chunk update the factor in place (vs marking it
    /// stale for a lazy refactor)? Exposed so tests and capacity
    /// planning can see the policy.
    pub fn updates_in_place(&self, k: usize) -> bool {
        UPDATE_REFACTOR_RATIO * k <= self.order()
    }

    /// A copy of the current accumulated result, per the wrapped
    /// accumulator's output selector — checkpoints stream on
    /// unaffected.
    pub fn snapshot(&self) -> AtaOutput<T> {
        self.acc.snapshot()
    }

    /// Fold a row chunk into the Gram mass *and* its factor:
    /// `C += chunkᵀ·chunk` always; the factor follows by an `O(n²k)`
    /// sweep when `6k <= n`, else lazily at the next query.
    ///
    /// # Panics
    /// If the chunk does not have exactly `n` columns.
    pub fn push(&mut self, chunk: MatRef<'_, T>) {
        self.push_scaled(T::ONE, chunk);
    }

    /// [`FactoredGram::push`] with a weight folded into the sweep:
    /// `C += α·chunkᵀ·chunk`. A negative `α` is a downdate; if it
    /// drives the mass indefinite the factor goes stale and the next
    /// query reports the typed error.
    ///
    /// # Panics
    /// If the chunk does not have exactly `n` columns.
    pub fn push_scaled(&mut self, alpha: T, chunk: MatRef<'_, T>) {
        self.acc.push_scaled(alpha, chunk);
        if alpha.to_f64() < 0.0 && chunk.rows() > 0 {
            self.downdates += 1;
        }
        // A failed downdating sweep only stales the factor; C stays
        // authoritative and the error resurfaces at the next query.
        let _ = self.fold_factor(alpha, chunk);
    }

    /// Remove a previously-pushed chunk from the mass (sliding
    /// window): `C -= chunkᵀ·chunk`, with the factor downdated by a
    /// hyperbolic sweep.
    ///
    /// # Errors
    /// [`UpdateError::Indefinite`] if the retraction makes the mass
    /// indefinite *and* the in-place sweep detected it immediately
    /// (the factor is marked stale; `C` stays authoritative, so
    /// retracting un-pushed data surfaces at the latest on the next
    /// query's refactor).
    ///
    /// # Panics
    /// If the chunk does not have exactly `n` columns.
    pub fn retract(&mut self, chunk: MatRef<'_, T>) -> Result<(), UpdateError> {
        self.acc.retract(chunk);
        if chunk.rows() > 0 {
            self.downdates += 1;
        }
        self.fold_factor(T::NEG_ONE, chunk)
    }

    /// Apply `α·chunkᵀ·chunk` to the live factor(s) per the
    /// update-or-refactor policy. `C` has already been updated; a
    /// failed or skipped sweep just leaves the factor stale.
    fn fold_factor(&mut self, alpha: T, chunk: MatRef<'_, T>) -> Result<(), UpdateError> {
        self.pca = None;
        if chunk.rows() == 0 || alpha == T::ZERO {
            return Ok(());
        }
        if !self.updates_in_place(chunk.rows()) {
            self.fresh = false;
            if let Some(s) = self.shifted.as_mut() {
                s.fresh = false;
            }
            return Ok(());
        }
        let mut first_err = None;
        if self.fresh {
            match self
                .factor
                .as_mut()
                .expect("fresh implies factor") // ata-lint: allow(no-unwrap-in-lib): fresh is only set true after factor is Some
                .rank_update(alpha, chunk)
            {
                Ok(()) => self.updates += 1,
                Err(e) => {
                    self.fresh = false;
                    first_err = Some(e);
                }
            }
        }
        // Keep the λ-shifted cache in lockstep: C + λI gains the same
        // rank-k mass.
        if let Some(s) = self.shifted.as_mut() {
            if s.fresh && s.factor.rank_update(alpha, chunk).is_err() {
                s.fresh = false;
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Apply a forgetting factor `β` to the mass and the factor —
    /// `O(n²)` on the triangle, `O(n)` on the factor (`D → βD`, `L`
    /// unchanged — the payoff of the square-root-free representation).
    ///
    /// # Panics
    /// If `beta <= 0` (definiteness would be destroyed).
    pub fn decay(&mut self, beta: T) {
        assert!(beta.to_f64() > 0.0, "decay factor must be positive");
        self.acc.decay(beta);
        self.pca = None;
        if self.fresh {
            self.factor
                .as_mut()
                .expect("fresh implies factor") // ata-lint: allow(no-unwrap-in-lib): fresh is only set true after factor is Some
                .decay(beta);
        }
        // C + λI does not scale to (βC) + λI; rebuild on next use.
        if let Some(s) = self.shifted.as_mut() {
            s.fresh = false;
        }
    }

    /// Ensure the factor reflects the current mass, refactoring
    /// lazily if needed.
    fn ensure_factor(&mut self) -> Result<&LdltFactor<T>, UpdateError> {
        if !self.fresh {
            match self.factor.as_mut() {
                Some(f) => f.refactor_from_lower(self.acc.as_lower())?,
                None => self.factor = Some(LdltFactor::from_lower(self.acc.as_lower())?),
            }
            self.refactors += 1;
            self.fresh = true;
        }
        Ok(self.factor.as_ref().expect("just ensured")) // ata-lint: allow(no-unwrap-in-lib): the branch above guarantees Some
    }

    /// Solve `C x = rhs` in `O(n²)` against the live factor.
    ///
    /// # Errors
    /// * [`UpdateError::Indefinite`] if the accumulated mass is not
    ///   positive definite (no rows yet, or over-retracted).
    /// * [`UpdateError::ShapeMismatch`] if `rhs.len() != n`.
    pub fn solve(&mut self, rhs: &[T]) -> Result<Vec<T>, UpdateError> {
        self.ensure_factor()?.solve(rhs)
    }

    /// Allocation-free [`FactoredGram::solve`]: `rhs` is overwritten
    /// with the solution. Once the factor is warm this performs no
    /// allocation at all.
    ///
    /// # Errors
    /// As [`FactoredGram::solve`].
    pub fn solve_in_place(&mut self, rhs: &mut [T]) -> Result<(), UpdateError> {
        self.ensure_factor()?.solve_in_place(rhs)
    }

    /// Solve `C X = B` for an `n × p` block of right-hand sides.
    ///
    /// # Errors
    /// As [`FactoredGram::solve`], with
    /// [`UpdateError::ShapeMismatch`] if `rhs` does not have `n` rows.
    pub fn solve_multi(&mut self, rhs: MatRef<'_, T>) -> Result<Matrix<T>, UpdateError> {
        self.ensure_factor()?.solve_multi(rhs)
    }

    /// Solve the ridge system `(C + λI) x = rhs`.
    ///
    /// The λ-shifted factor is cached and maintained by the same
    /// update-or-refactor policy as the main factor: repeating a λ
    /// across pushes costs `O(n²k)` per push and `O(n²)` per solve;
    /// changing λ (or a tall push) rebuilds the shifted factor once.
    ///
    /// # Errors
    /// * [`UpdateError::Indefinite`] if `C + λI` is not positive
    ///   definite (possible at `λ = 0` with rank-deficient mass).
    /// * [`UpdateError::ShapeMismatch`] if `rhs.len() != n`.
    ///
    /// # Panics
    /// If `lambda < 0`.
    pub fn ridge(&mut self, lambda: T, rhs: &[T]) -> Result<Vec<T>, UpdateError> {
        assert!(lambda.to_f64() >= 0.0, "lambda must be non-negative");
        let n = self.order();
        if rhs.len() != n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: rhs.len(),
            });
        }
        let hit = matches!(&self.shifted, Some(s) if s.fresh && s.lambda == lambda);
        if !hit {
            let mut g = self.acc.as_lower().to_matrix();
            for i in 0..n {
                g[(i, i)] += lambda;
            }
            let factor = match self.shifted.take() {
                // Reuse the cached factor's buffers for the rebuild.
                Some(mut s) => {
                    s.factor.refactor_from_lower(g.as_ref())?;
                    s.factor
                }
                None => LdltFactor::from_lower(g.as_ref())?,
            };
            self.shifted = Some(ShiftedFactor {
                lambda,
                factor,
                fresh: true,
            });
            self.refactors += 1;
        }
        self.shifted
            .as_ref()
            .expect("just built") // ata-lint: allow(no-unwrap-in-lib): the miss branch above stores Some before this line
            .factor
            .solve(rhs)
    }

    /// `log det C` from the live factor — `O(n)` once warm.
    ///
    /// # Errors
    /// [`UpdateError::Indefinite`] if the mass is not positive
    /// definite.
    pub fn logdet(&mut self) -> Result<f64, UpdateError> {
        Ok(self.ensure_factor()?.logdet())
    }

    /// Leverage of a candidate row against the accumulated mass:
    /// `rowᵀ C⁻¹ row` — one forward substitution, `O(n²)`. The score
    /// every online experiment-design / outlier loop queries per
    /// candidate.
    ///
    /// # Errors
    /// As [`FactoredGram::solve`].
    pub fn leverage(&mut self, row: &[T]) -> Result<f64, UpdateError> {
        self.ensure_factor()?.inv_quadform(row)
    }

    /// Project a row onto the top-`k` principal axes of the
    /// accumulated mass (eigenvectors of `C`, descending eigenvalue
    /// order). The eigendecomposition is cached until the next mass
    /// mutation, so a scoring loop pays it once.
    ///
    /// # Errors
    /// [`UpdateError::ShapeMismatch`] if `row.len() != n` or `k > n`.
    pub fn pca_project(&mut self, row: &[T], k: usize) -> Result<Vec<f64>, UpdateError> {
        let n = self.order();
        if row.len() != n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: row.len(),
            });
        }
        if k > n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: k,
            });
        }
        let cache = self.ensure_pca();
        let mut out = vec![0.0f64; k];
        for (c, ov) in out.iter_mut().enumerate() {
            let mut s = 0.0;
            for (i, rv) in row.iter().enumerate() {
                s += cache.eigenvectors[(i, c)] * rv.to_f64();
            }
            *ov = s;
        }
        Ok(out)
    }

    /// The top-`k` eigenvalues of the accumulated mass (descending) —
    /// the per-axis variances behind [`FactoredGram::pca_project`],
    /// from the same cached decomposition.
    ///
    /// # Errors
    /// [`UpdateError::ShapeMismatch`] if `k > n`.
    pub fn principal_variances(&mut self, k: usize) -> Result<Vec<f64>, UpdateError> {
        let n = self.order();
        if k > n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: k,
            });
        }
        let cache = self.ensure_pca();
        Ok(cache.eigenvalues[..k].to_vec())
    }

    fn ensure_pca(&mut self) -> &PcaCache {
        if self.pca.is_none() {
            // jacobi_eigen reads the lower triangle symmetrically, so
            // the accumulator's triangle is usable as-is.
            let g = self.acc.as_lower().to_matrix();
            let (eigenvalues, eigenvectors) = jacobi_eigen(&g, 1e-12);
            self.pca = Some(PcaCache {
                eigenvalues,
                eigenvectors,
            });
        }
        self.pca.as_ref().expect("just built") // ata-lint: allow(no-unwrap-in-lib): the branch above fills the cache
    }
}
