//! Sharded distributed serving: [`ShardedService`].
//!
//! [`crate::service::AtaService`] batches a flood onto *one* node's
//! pool; [`crate::dist::DistPlan`] splits *one* large problem across
//! simulated ranks. A production front door needs both at once: route a
//! heterogeneous flood so that small Gram problems run whole — one per
//! rank-shard, coalesced into per-shard [`BatchPlan`] dispatches — while
//! problems too large for a single shard split across all P ranks via
//! AtA-D (Algorithm 4). [`ShardedService`] is that router.
//!
//! Three properties make it a serving component rather than a demo:
//!
//! * **Priced routing.** Every split dispatch is quoted *before* it is
//!   accepted, by the bit-exact traffic predictor
//!   (`ata_dist::traffic`): the quoted [`RoutePrice`] words match the
//!   simulator's [`ata_mpisim::RankMetrics`] counters exactly, so
//!   admission control ([`ShardedServiceBuilder::admission_words`])
//!   rejects over-budget problems from *predicted* traffic, not from
//!   observed congestion.
//! * **Backpressure.** Each shard owns a bounded queue; a full preferred
//!   queue spills to the next live shard, and when every live queue is
//!   full [`ShardedService::try_submit`] reports
//!   [`ShardSubmitError::Full`], handing the operand back.
//! * **Failure containment.** A shard worker that panics stops
//!   computing: its accepted-but-unanswered jobs are requeued to
//!   surviving shards under a quarantine policy (requeued jobs run
//!   *solo*, so a job whose solo dispatch panics again is the proven
//!   culprit and is failed with [`JobError::Requeued`] instead of
//!   hunting more shards), capped by a retry budget. The dead shard's
//!   mailbox keeps being drained — a job routed to a dying shard is
//!   forwarded, never stranded.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ata_dist::{plan_traffic, DistPlan, RoutePrice};
use ata_mat::{Matrix, Scalar, SymPacked};
use ata_mpisim::{run, CostModel};
use crossbeam::channel::{self, TrySendError};

use crate::batch::BatchPlan;
use crate::context::{lock_recover, AtaContext, AtaOutput, Output};

/// Why a job handle carries no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// The job was caught on panicking shards until the requeue path
    /// gave up: either its own solo dispatch panicked (proven culprit),
    /// the retry budget ran out, or no live shard was left to take it.
    /// `attempts` counts the dispatch attempts that ended in a panic.
    Requeued {
        /// Dispatch attempts that ended in a shard panic.
        attempts: usize,
    },
    /// The service shut down before the job ran.
    Closed,
    /// An internal invariant failed while executing the job (e.g. the
    /// simulated cluster produced no rank-0 result); the job is failed
    /// instead of panicking the serving lane.
    Internal,
}

/// The result side of a submitted job; [`ShardJobHandle::wait`] blocks
/// until a shard has executed (or given up on) the job.
#[derive(Debug)]
pub struct ShardJobHandle<T: Scalar> {
    recv: channel::Receiver<Result<AtaOutput<T>, JobError>>,
}

impl<T: Scalar> ShardJobHandle<T> {
    /// Block until the job's outcome is known: the result, or the
    /// [`JobError`] explaining why there is none.
    pub fn wait(self) -> Result<AtaOutput<T>, JobError> {
        match self.recv.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(JobError::Closed),
        }
    }
}

/// Error returned by [`ShardedService::submit`] and
/// [`ShardedService::try_submit`]; variants carrying the operand hand it
/// back so the caller can retry, shed or reroute.
#[derive(Debug)]
pub enum ShardSubmitError<T: Scalar> {
    /// Every live shard's bounded queue is at capacity (`try_submit`
    /// only) — the backpressure signal.
    Full(Matrix<T>),
    /// Admission control: the traffic predictor priced this problem's
    /// AtA-D split above the configured word budget.
    Rejected {
        /// The operand, handed back.
        a: Matrix<T>,
        /// The quoted per-rank word bill ([`RoutePrice::max_rank_words`]).
        predicted_words: u64,
        /// The configured [`ShardedServiceBuilder::admission_words`] cap.
        budget: u64,
    },
    /// The service has shut down, or every shard has failed.
    Closed(Matrix<T>),
}

/// What a queued job carries: an operand, or an injected failure.
#[derive(Debug)]
enum Payload<T: Scalar> {
    Compute(Matrix<T>),
    /// Failure injection: panics the shard worker that dequeues it.
    Poison,
}

/// One queued job, re-submittable across shards: the payload stays
/// owned until the job is answered, so a panicked shard's jobs can move.
#[derive(Debug)]
struct ShardJob<T: Scalar> {
    payload: Payload<T>,
    resp: channel::Sender<Result<AtaOutput<T>, JobError>>,
    /// Dispatch attempts that ended in a shard panic.
    attempts: usize,
    /// Quarantined after a requeue: runs alone, never coalesced, so a
    /// second panic identifies it as the culprit.
    solo: bool,
}

impl<T: Scalar> ShardJob<T> {
    fn shape(&self) -> (usize, usize) {
        match &self.payload {
            Payload::Compute(a) => a.shape(),
            Payload::Poison => (0, 0),
        }
    }

    /// Descending-dispatch key: the `m n^2` multiply volume of the
    /// classical product — the same largest-first policy as
    /// [`crate::service::AtaService`]'s worker.
    fn flop_estimate(&self) -> u128 {
        let (m, n) = self.shape();
        m as u128 * n as u128 * n as u128
    }

    fn into_matrix(self) -> Matrix<T> {
        match self.payload {
            Payload::Compute(a) => a,
            Payload::Poison => unreachable!("poison jobs never hand an operand back"),
        }
    }
}

/// Per-shard slot: the queue's sending half plus this shard's counters.
#[derive(Debug)]
struct ShardSlot<T: Scalar> {
    /// `Some` until shutdown; the router and requeuing workers clone it
    /// briefly, so dropping the slot's copy disconnects the queue once
    /// in-flight sends finish.
    sender: Mutex<Option<channel::Sender<ShardJob<T>>>>,
    /// Set (never cleared) when this shard's worker panics.
    dead: AtomicBool,
    jobs: AtomicUsize,
    batches: AtomicUsize,
    /// Jobs this shard handed away: panic requeues plus dead-mailbox
    /// forwards.
    requeues: AtomicUsize,
}

/// A shared AtA-D plan with the price quote derived from it, cached per
/// distinct split shape.
type PricedPlan = Arc<(DistPlan, RoutePrice)>;

/// State shared by the router, the shard workers and the split worker.
#[derive(Debug)]
struct Shared<T: Scalar> {
    ctx: AtaContext,
    slots: Vec<ShardSlot<T>>,
    max_batch: usize,
    output: Output,
    retry_budget: usize,
    loggp: CostModel,
    /// Shape-keyed cache of the shared AtA-D plan (and its price quote)
    /// the split lane executes — built once per distinct large shape.
    dist_plans: Mutex<HashMap<(usize, usize), PricedPlan>>,
    split_jobs: AtomicUsize,
    failed_jobs: AtomicUsize,
    rejected_jobs: AtomicUsize,
    dead_shards: AtomicUsize,
    predicted_split_words: AtomicU64,
    simulated_split_words: AtomicU64,
    predicted_root_recv_words: AtomicU64,
    simulated_root_recv_words: AtomicU64,
}

impl<T: Scalar + 'static> Shared<T> {
    /// Fetch or build the shared `(DistPlan, RoutePrice)` for an
    /// `(m, n)` split — the price is derived from the *same* plan the
    /// split lane executes, which is what makes predicted and simulated
    /// words bit-identical.
    fn dist_plan_for(&self, m: usize, n: usize) -> PricedPlan {
        let mut map = lock_recover(&self.dist_plans);
        map.entry((m, n))
            .or_insert_with(|| {
                let cfg = self.ctx.dist_config::<T>();
                let plan = DistPlan::build(m, n, self.slots.len(), &cfg);
                let price = plan_traffic(&plan).price();
                Arc::new((plan, price))
            })
            .clone()
    }

    /// Hand a job to a live shard, round-robin from `from + 1`. With
    /// `panicked` the job came out of a panicked batch: its attempt
    /// count grows and the quarantine policy applies; otherwise this is
    /// a dead shard's mailbox forwarding a routing race, context intact.
    fn reroute(&self, from: usize, job: ShardJob<T>, panicked: bool) {
        let mut job = job;
        if panicked {
            job.attempts += 1;
            if job.solo || job.attempts > self.retry_budget {
                // A solo dispatch that panicked proves the job itself is
                // the trigger — fail it instead of hunting more shards.
                self.failed_jobs.fetch_add(1, Ordering::SeqCst);
                let attempts = job.attempts;
                let _ = job.resp.send(Err(JobError::Requeued { attempts }));
                return;
            }
            job.solo = true;
        }
        self.slots[from].requeues.fetch_add(1, Ordering::SeqCst);
        let p = self.slots.len();
        for k in 1..p {
            let i = (from + k) % p;
            if self.slots[i].dead.load(Ordering::SeqCst) {
                continue;
            }
            let Some(sender) = lock_recover(&self.slots[i].sender).clone() else {
                continue;
            };
            // Blocking send is safe: every shard queue is drained by its
            // worker or, after a panic, by the worker's ghost loop.
            match sender.send(job) {
                Ok(()) => return,
                Err(channel::SendError(back)) => job = back,
            }
        }
        // No surviving shard can take it.
        self.failed_jobs.fetch_add(1, Ordering::SeqCst);
        let attempts = job.attempts;
        let _ = job.resp.send(Err(JobError::Requeued { attempts }));
    }
}

/// One shard's worker loop: drain the queue into largest-first batches,
/// execute through a per-shard [`BatchPlan`], answer the submitters.
/// After a panic the loop degrades to a ghost that only forwards — the
/// shard is dead for compute, but its mailbox never strands a job.
fn shard_worker<T: Scalar + 'static>(
    shared: Arc<Shared<T>>,
    index: usize,
    receiver: channel::Receiver<ShardJob<T>>,
) {
    let slot = &shared.slots[index];
    let mut pending: Option<ShardJob<T>> = None;
    loop {
        let first = match pending.take() {
            Some(job) => job,
            None => match receiver.recv() {
                Ok(job) => job,
                Err(_) => break,
            },
        };
        if slot.dead.load(Ordering::SeqCst) {
            shared.reroute(index, first, false);
            continue;
        }
        let mut batch = vec![first];
        if !batch[0].solo {
            while batch.len() < shared.max_batch {
                match receiver.try_recv() {
                    // Quarantined jobs must run alone: stop coalescing
                    // and keep the solo job as the next dispatch.
                    Ok(job) if job.solo => {
                        pending = Some(job);
                        break;
                    }
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }
        batch.sort_by_key(|job| std::cmp::Reverse(job.flop_estimate()));
        let poisoned = batch
            .iter()
            .any(|job| matches!(job.payload, Payload::Poison));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if poisoned {
                panic!("injected shard failure (poison job)");
            }
            let shapes: Vec<(usize, usize)> = batch.iter().map(|job| job.shape()).collect();
            let plan: BatchPlan<T> = shared.ctx.batch_plan(&shapes, shared.output);
            let refs: Vec<_> = batch
                .iter()
                .map(|job| match &job.payload {
                    Payload::Compute(a) => a.as_ref(),
                    Payload::Poison => unreachable!("poisoned batches panic before planning"),
                })
                .collect();
            plan.execute_batch(&refs)
        }));
        match outcome {
            Ok(results) => {
                slot.jobs.fetch_add(batch.len(), Ordering::SeqCst);
                slot.batches.fetch_add(1, Ordering::SeqCst);
                for (job, result) in batch.into_iter().zip(results) {
                    let _ = job.resp.send(Ok(result));
                }
            }
            Err(_) => {
                slot.dead.store(true, Ordering::SeqCst);
                shared.dead_shards.fetch_add(1, Ordering::SeqCst);
                for job in batch {
                    shared.reroute(index, job, true);
                }
            }
        }
    }
}

/// The split lane's worker: executes each large job through the shared
/// AtA-D plan on the simulated P-rank cluster and reconciles the quoted
/// price against the simulator's exact counters.
fn split_worker<T: Scalar + 'static>(
    shared: Arc<Shared<T>>,
    receiver: channel::Receiver<ShardJob<T>>,
) {
    while let Ok(job) = receiver.recv() {
        let ShardJob { payload, resp, .. } = job;
        let Payload::Compute(a) = payload else {
            // Poison targets shard workers; the split lane ignores it.
            continue;
        };
        let (m, n) = a.shape();
        let entry = shared.dist_plan_for(m, n);
        let (plan, price) = (&entry.0, entry.1);
        let a_ref = &a;
        let report = run(plan.procs(), shared.loggp, move |comm| {
            let input = (comm.rank() == 0).then_some(a_ref);
            plan.execute(input, comm)
        });
        let total_words = report.total_words();
        let root_recv_words = report.metrics[0].words_recv;
        // The closure passed to `run` returns Some exactly on rank 0;
        // if the contract is ever broken, fail the job, not the lane.
        let Some(lower) = report.results.into_iter().flatten().next() else {
            let _ = resp.send(Err(JobError::Internal));
            continue;
        };
        shared.split_jobs.fetch_add(1, Ordering::SeqCst);
        shared
            .predicted_split_words
            .fetch_add(price.total_words, Ordering::SeqCst);
        shared
            .simulated_split_words
            .fetch_add(total_words, Ordering::SeqCst);
        shared
            .predicted_root_recv_words
            .fetch_add(price.root_recv_words, Ordering::SeqCst);
        shared
            .simulated_root_recv_words
            .fetch_add(root_recv_words, Ordering::SeqCst);
        let _ = resp.send(Ok(shape_output(lower, shared.output)));
    }
}

/// Shape the cluster's lower triangle into the service's output
/// representation.
fn shape_output<T: Scalar>(mut lower: Matrix<T>, output: Output) -> AtaOutput<T> {
    match output {
        Output::Gram => {
            lower.mirror_lower_to_upper();
            AtaOutput::Dense(lower)
        }
        Output::Lower => AtaOutput::Dense(lower),
        Output::Packed => AtaOutput::Packed(SymPacked::from_lower(&lower)),
    }
}

/// One shard's statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Jobs this shard executed to completion.
    pub jobs: usize,
    /// Batched dispatches this shard ran.
    pub batches: usize,
    /// Jobs this shard handed away (panic requeues plus dead-mailbox
    /// forwards).
    pub requeues: usize,
    /// Whether this shard's worker has panicked.
    pub dead: bool,
}

/// Snapshot of a sharded service's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardedStats {
    /// Per-shard counters, indexed by shard.
    pub per_shard: Vec<ShardStats>,
    /// Jobs routed whole-per-shard and completed.
    pub whole_jobs: usize,
    /// Jobs split across the ranks via AtA-D and completed.
    pub split_jobs: usize,
    /// Requeue events across all shards.
    pub requeued_jobs: usize,
    /// Jobs answered with [`JobError::Requeued`].
    pub failed_jobs: usize,
    /// Jobs refused by admission control.
    pub rejected_jobs: usize,
    /// Shards whose worker has panicked.
    pub dead_shards: usize,
    /// Predictor-quoted total words across all split dispatches.
    pub predicted_split_words: u64,
    /// Simulator-counted total words across all split dispatches
    /// (bit-identical to the prediction — asserted in the bench record).
    pub simulated_split_words: u64,
    /// Predictor-quoted words converging on rank 0 during retrieval.
    pub predicted_root_recv_words: u64,
    /// Simulator-counted words received by rank 0.
    pub simulated_root_recv_words: u64,
}

impl ShardedStats {
    /// Total jobs that completed with a result.
    pub fn completed_jobs(&self) -> usize {
        self.whole_jobs + self.split_jobs
    }
}

/// Builder for [`ShardedService`] — see [`ShardedService::builder`].
#[derive(Debug)]
pub struct ShardedServiceBuilder {
    ctx: AtaContext,
    shards: usize,
    queue_capacity: usize,
    max_batch: usize,
    output: Output,
    split_words: usize,
    retry_budget: usize,
    admission_words: Option<u64>,
    loggp: CostModel,
}

impl ShardedServiceBuilder {
    /// Start building a sharded service over `ctx` (shared, not
    /// consumed: plan cores, arenas and the worker pool stay common
    /// property of every front-end on the context).
    pub fn new(ctx: &AtaContext) -> Self {
        ShardedServiceBuilder {
            ctx: ctx.clone(),
            shards: 4,
            queue_capacity: 16,
            max_batch: 8,
            output: Output::Gram,
            split_words: 32 * 1024,
            retry_budget: 2,
            admission_words: None,
            loggp: CostModel::zero(),
        }
    }

    /// Number of rank-shards `P`. Small problems run whole on one of
    /// them; large problems split across all of them via AtA-D.
    /// Default 4.
    ///
    /// # Panics
    /// If zero.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a sharded service needs at least one shard");
        self.shards = shards;
        self
    }

    /// Bound on each shard's queued (not yet dispatched) jobs; the split
    /// lane uses the same bound. Default 16.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Most jobs one shard coalesces into one batched dispatch.
    /// Default 8.
    ///
    /// # Panics
    /// If zero.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }

    /// Output representation of every result. Default [`Output::Gram`].
    pub fn output(mut self, output: Output) -> Self {
        self.output = output;
        self
    }

    /// The routing threshold, in operand words `m * n`: problems at or
    /// above it split across the ranks via AtA-D, smaller ones run whole
    /// on one shard. Default 32768 (the f64 L2-ish budget the cache
    /// model also defaults around); `usize::MAX` disables splitting.
    pub fn split_words(mut self, words: usize) -> Self {
        self.split_words = words;
        self
    }

    /// How many times a job caught in a panicked batch may be requeued
    /// before it is failed with [`JobError::Requeued`]. Requeued jobs
    /// run solo (quarantine), so one poisonous job stops hunting shards
    /// after its first solo panic regardless of this budget. Default 2.
    pub fn retry_budget(mut self, budget: usize) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Admission budget in predicted per-rank words
    /// ([`RoutePrice::max_rank_words`]): a split dispatch quoted above
    /// this is refused at submission with [`ShardSubmitError::Rejected`].
    /// Default: no cap.
    pub fn admission_words(mut self, words: u64) -> Self {
        self.admission_words = Some(words);
        self
    }

    /// LogGP cost model of the simulated cluster the split lane runs
    /// on. Default [`CostModel::zero`] (pure counting).
    pub fn loggp(mut self, model: CostModel) -> Self {
        self.loggp = model;
        self
    }

    /// Spawn the shard workers and the split lane; returns the running
    /// service.
    pub fn build<T: Scalar + 'static>(self) -> ShardedService<T> {
        let mut slots = Vec::with_capacity(self.shards);
        let mut receivers = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let (sender, receiver) = channel::bounded::<ShardJob<T>>(self.queue_capacity);
            slots.push(ShardSlot {
                sender: Mutex::new(Some(sender)),
                dead: AtomicBool::new(false),
                jobs: AtomicUsize::new(0),
                batches: AtomicUsize::new(0),
                requeues: AtomicUsize::new(0),
            });
            receivers.push(receiver);
        }
        let shared = Arc::new(Shared {
            ctx: self.ctx,
            slots,
            max_batch: self.max_batch,
            output: self.output,
            retry_budget: self.retry_budget,
            loggp: self.loggp,
            dist_plans: Mutex::new(HashMap::new()),
            split_jobs: AtomicUsize::new(0),
            failed_jobs: AtomicUsize::new(0),
            rejected_jobs: AtomicUsize::new(0),
            dead_shards: AtomicUsize::new(0),
            predicted_split_words: AtomicU64::new(0),
            simulated_split_words: AtomicU64::new(0),
            predicted_root_recv_words: AtomicU64::new(0),
            simulated_root_recv_words: AtomicU64::new(0),
        });
        let workers = receivers
            .into_iter()
            .enumerate()
            .map(|(index, receiver)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ata-shard-{index}"))
                    .spawn(move || shard_worker(shared, index, receiver)) // ata-lint: allow(no-raw-spawn): shard serving thread, compute stays in the pool
                    .expect("failed to spawn shard worker") // ata-lint: allow(no-unwrap-in-lib): OS spawn failure at build time is unrecoverable
            })
            .collect();
        let (split_sender, split_receiver) = channel::bounded::<ShardJob<T>>(self.queue_capacity);
        let split_shared = shared.clone();
        let split_worker = std::thread::Builder::new()
            .name("ata-shard-split".into())
            .spawn(move || split_worker(split_shared, split_receiver)) // ata-lint: allow(no-raw-spawn): split-lane serving thread, compute stays in the simulator
            .expect("failed to spawn split worker"); // ata-lint: allow(no-unwrap-in-lib): OS spawn failure at build time is unrecoverable
        ShardedService {
            shared,
            split_sender: Some(split_sender),
            workers,
            split_worker: Some(split_worker),
            cursor: AtomicUsize::new(0),
            split_words: self.split_words,
            admission_words: self.admission_words,
        }
    }
}

/// The sharded serving front door: P rank-shards with bounded queues
/// for whole small problems, one AtA-D split lane for large ones,
/// traffic-priced routing, and requeue-on-shard-failure. [`Send`] and
/// [`Sync`] — share it behind an `Arc` and submit from any number of
/// threads.
///
/// Dropping the service closes every queue and joins the workers after
/// they drain the jobs already accepted.
///
/// # Example
///
/// ```
/// use ata::shard::ShardedServiceBuilder;
/// use ata::AtaContext;
/// use ata::mat::gen;
///
/// let ctx = AtaContext::serial();
/// let svc = ShardedServiceBuilder::new(&ctx)
///     .shards(4)
///     .split_words(16 * 1024)
///     .build::<f64>();
/// // 96 x 40 = 3840 words: routed whole to one shard.
/// let small = svc.submit(gen::standard::<f64>(1, 96, 40)).unwrap();
/// // 512 x 64 = 32768 words: split across the 4 ranks via AtA-D.
/// let large = svc.submit(gen::standard::<f64>(2, 512, 64)).unwrap();
/// assert_eq!(small.wait().unwrap().order(), 40);
/// assert_eq!(large.wait().unwrap().order(), 64);
/// let stats = svc.shutdown();
/// assert_eq!(stats.whole_jobs, 1);
/// assert_eq!(stats.split_jobs, 1);
/// assert_eq!(stats.predicted_split_words, stats.simulated_split_words);
/// ```
#[derive(Debug)]
pub struct ShardedService<T: Scalar> {
    shared: Arc<Shared<T>>,
    /// `Some` until shutdown; dropped before joining the split worker.
    split_sender: Option<channel::Sender<ShardJob<T>>>,
    workers: Vec<JoinHandle<()>>,
    split_worker: Option<JoinHandle<()>>,
    /// Round-robin routing cursor over the shards.
    cursor: AtomicUsize,
    split_words: usize,
    admission_words: Option<u64>,
}

impl<T: Scalar + 'static> ShardedService<T> {
    /// Start building a sharded service over `ctx` — see
    /// [`ShardedServiceBuilder::new`].
    pub fn builder(ctx: &AtaContext) -> ShardedServiceBuilder {
        ShardedServiceBuilder::new(ctx)
    }

    /// Number of rank-shards.
    pub fn shards(&self) -> usize {
        self.shared.slots.len()
    }

    /// The routing threshold in operand words.
    pub fn split_words(&self) -> usize {
        self.split_words
    }

    /// Whether an `(m, n)` problem would split across the ranks.
    fn is_split(&self, m: usize, n: usize) -> bool {
        self.shards() > 1 && m > 0 && n > 0 && m.saturating_mul(n) >= self.split_words
    }

    /// The routing decision and its price for an `(m, n)` problem:
    /// `None` when it would run whole on one shard, the predictor's
    /// quote when it would split via AtA-D — the same quote admission
    /// control uses, exposed so callers can pre-flight a workload.
    pub fn quote(&self, m: usize, n: usize) -> Option<RoutePrice> {
        self.is_split(m, n)
            .then(|| self.shared.dist_plan_for(m, n).1)
    }

    /// Submit a job, blocking while the routed queue is full. Admission
    /// control still applies ([`ShardSubmitError::Rejected`]), and a
    /// fully failed or shut-down service reports
    /// [`ShardSubmitError::Closed`]; `Full` never occurs here.
    pub fn submit(&self, a: Matrix<T>) -> Result<ShardJobHandle<T>, ShardSubmitError<T>> {
        self.submit_inner(a, true)
    }

    /// Submit without blocking: [`ShardSubmitError::Full`] when every
    /// live shard's queue (or, for a large problem, the split lane) is
    /// at capacity — the backpressure signal, handing the operand back.
    pub fn try_submit(&self, a: Matrix<T>) -> Result<ShardJobHandle<T>, ShardSubmitError<T>> {
        self.submit_inner(a, false)
    }

    fn submit_inner(
        &self,
        a: Matrix<T>,
        blocking: bool,
    ) -> Result<ShardJobHandle<T>, ShardSubmitError<T>> {
        let (m, n) = a.shape();
        if self.is_split(m, n) {
            // Price the split before dispatch; the same cached plan the
            // split lane will execute backs the quote.
            let price = self.shared.dist_plan_for(m, n).1;
            if let Some(budget) = self.admission_words {
                if price.max_rank_words > budget {
                    self.shared.rejected_jobs.fetch_add(1, Ordering::SeqCst);
                    return Err(ShardSubmitError::Rejected {
                        a,
                        predicted_words: price.max_rank_words,
                        budget,
                    });
                }
            }
            let (resp, recv) = channel::unbounded();
            let job = ShardJob {
                payload: Payload::Compute(a),
                resp,
                attempts: 0,
                solo: false,
            };
            let Some(sender) = self.split_sender.as_ref() else {
                return Err(ShardSubmitError::Closed(job.into_matrix()));
            };
            return if blocking {
                match sender.send(job) {
                    Ok(()) => Ok(ShardJobHandle { recv }),
                    Err(channel::SendError(job)) => {
                        Err(ShardSubmitError::Closed(job.into_matrix()))
                    }
                }
            } else {
                match sender.try_send(job) {
                    Ok(()) => Ok(ShardJobHandle { recv }),
                    Err(TrySendError::Full(job)) => Err(ShardSubmitError::Full(job.into_matrix())),
                    Err(TrySendError::Disconnected(job)) => {
                        Err(ShardSubmitError::Closed(job.into_matrix()))
                    }
                }
            };
        }
        let (resp, recv) = channel::unbounded();
        let job = ShardJob {
            payload: Payload::Compute(a),
            resp,
            attempts: 0,
            solo: false,
        };
        match self.route_to_shard(job, blocking) {
            Ok(()) => Ok(ShardJobHandle { recv }),
            Err((job, full)) => {
                let a = job.into_matrix();
                Err(if full {
                    ShardSubmitError::Full(a)
                } else {
                    ShardSubmitError::Closed(a)
                })
            }
        }
    }

    /// Route a job round-robin over the live shards; non-blocking mode
    /// spills to the next live shard when the preferred queue is full.
    /// On failure returns the job and whether backpressure (rather than
    /// a closed/failed service) was the cause.
    fn route_to_shard(&self, job: ShardJob<T>, blocking: bool) -> Result<(), (ShardJob<T>, bool)> {
        let p = self.shards();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let mut job = job;
        let mut saw_full = false;
        for k in 0..p {
            let i = (start + k) % p;
            if self.shared.slots[i].dead.load(Ordering::SeqCst) {
                continue;
            }
            let Some(sender) = lock_recover(&self.shared.slots[i].sender).clone() else {
                continue;
            };
            if blocking {
                match sender.send(job) {
                    Ok(()) => return Ok(()),
                    Err(channel::SendError(back)) => job = back,
                }
            } else {
                match sender.try_send(job) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Full(back)) => {
                        saw_full = true;
                        job = back;
                    }
                    Err(TrySendError::Disconnected(back)) => job = back,
                }
            }
        }
        Err((job, saw_full))
    }

    /// Failure injection: enqueue a job that panics the shard worker
    /// dequeuing it (together with whatever batch it was coalesced
    /// into — those jobs exercise the requeue path). The handle reports
    /// [`JobError::Requeued`] once the quarantine gives up on the
    /// poison. For shard-failure tests and chaos drills.
    pub fn submit_poison(&self) -> ShardJobHandle<T> {
        let (resp, recv) = channel::unbounded();
        let job = ShardJob {
            payload: Payload::Poison,
            resp,
            attempts: 0,
            solo: false,
        };
        if let Err((job, _)) = self.route_to_shard(job, true) {
            let _ = job.resp.send(Err(JobError::Closed));
        }
        ShardJobHandle { recv }
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ShardedStats {
        let per_shard: Vec<ShardStats> = self
            .shared
            .slots
            .iter()
            .map(|s| ShardStats {
                jobs: s.jobs.load(Ordering::SeqCst),
                batches: s.batches.load(Ordering::SeqCst),
                requeues: s.requeues.load(Ordering::SeqCst),
                dead: s.dead.load(Ordering::SeqCst),
            })
            .collect();
        let whole_jobs = per_shard.iter().map(|s| s.jobs).sum();
        let requeued_jobs = per_shard.iter().map(|s| s.requeues).sum();
        ShardedStats {
            per_shard,
            whole_jobs,
            split_jobs: self.shared.split_jobs.load(Ordering::SeqCst),
            requeued_jobs,
            failed_jobs: self.shared.failed_jobs.load(Ordering::SeqCst),
            rejected_jobs: self.shared.rejected_jobs.load(Ordering::SeqCst),
            dead_shards: self.shared.dead_shards.load(Ordering::SeqCst),
            predicted_split_words: self.shared.predicted_split_words.load(Ordering::SeqCst),
            simulated_split_words: self.shared.simulated_split_words.load(Ordering::SeqCst),
            predicted_root_recv_words: self.shared.predicted_root_recv_words.load(Ordering::SeqCst),
            simulated_root_recv_words: self.shared.simulated_root_recv_words.load(Ordering::SeqCst),
        }
    }

    /// Close every queue, let the workers drain the accepted jobs, and
    /// join them. Equivalent to dropping the service, but explicit and
    /// returning the final statistics.
    pub fn shutdown(mut self) -> ShardedStats {
        self.close_and_join(true);
        self.stats()
    }

    fn close_and_join(&mut self, loud: bool) {
        for slot in &self.shared.slots {
            drop(lock_recover(&slot.sender).take());
        }
        drop(self.split_sender.take());
        let mut payload = None;
        for worker in self.workers.drain(..) {
            if let Err(p) = worker.join() {
                payload.get_or_insert(p);
            }
        }
        if let Some(worker) = self.split_worker.take() {
            if let Err(p) = worker.join() {
                payload.get_or_insert(p);
            }
        }
        // Shard panics were already contained (dead flag + requeue);
        // only an unexpected escape reaches here.
        if loud {
            if let Some(p) = payload {
                std::panic::resume_unwind(p);
            }
        }
    }
}

impl<T: Scalar> Drop for ShardedService<T> {
    fn drop(&mut self) {
        for slot in &self.shared.slots {
            if let Ok(mut sender) = slot.sender.lock() {
                drop(sender.take());
            }
        }
        drop(self.split_sender.take());
        for worker in self.workers.drain(..) {
            // Drop must not panic; shutdown() is the loud path.
            let _ = worker.join();
        }
        if let Some(worker) = self.split_worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};

    fn oracle(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.cols();
        let mut c = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        c.mirror_lower_to_upper();
        c
    }

    fn service(split_words: usize) -> ShardedService<f64> {
        ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(4)
            .split_words(split_words)
            .build()
    }

    #[test]
    fn routes_small_whole_and_large_split() {
        let svc = service(2048);
        // 48 x 16 = 768 words: whole-per-shard. 128 x 32 = 4096: split.
        let smalls: Vec<Matrix<f64>> = (0..6).map(|i| gen::standard::<f64>(i, 48, 16)).collect();
        let larges: Vec<Matrix<f64>> = (0..2)
            .map(|i| gen::standard::<f64>(100 + i, 128, 32))
            .collect();
        let hs: Vec<_> = smalls
            .iter()
            .map(|a| svc.submit(a.clone()).unwrap())
            .collect();
        let hl: Vec<_> = larges
            .iter()
            .map(|a| svc.submit(a.clone()).unwrap())
            .collect();
        for (h, a) in hs.into_iter().zip(&smalls) {
            let g = h.wait().expect("whole job completes").into_dense();
            assert!(g.max_abs_diff(&oracle(a)) < 1e-10);
        }
        for (h, a) in hl.into_iter().zip(&larges) {
            let g = h.wait().expect("split job completes").into_dense();
            assert!(g.max_abs_diff(&oracle(a)) < 1e-10);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.whole_jobs, 6);
        assert_eq!(stats.split_jobs, 2);
        assert_eq!(stats.completed_jobs(), 8);
        assert_eq!(stats.failed_jobs, 0);
        assert_eq!(stats.dead_shards, 0);
        assert!(stats.predicted_split_words > 0, "4-rank splits communicate");
        // The routing quote and the simulator's counters agree bit-exactly.
        assert_eq!(stats.predicted_split_words, stats.simulated_split_words);
        assert_eq!(
            stats.predicted_root_recv_words,
            stats.simulated_root_recv_words
        );
    }

    #[test]
    fn packed_output_round_trips_through_both_routes() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(2)
            .split_words(2048)
            .output(Output::Packed)
            .build();
        let small = gen::standard::<f64>(3, 40, 12);
        let large = gen::standard::<f64>(4, 96, 48);
        let hs = svc.submit(small.clone()).unwrap();
        let hl = svc.submit(large.clone()).unwrap();
        for (h, a) in [(hs, &small), (hl, &large)] {
            let out = h.wait().expect("completes");
            assert!(matches!(out, AtaOutput::Packed(_)));
            assert!(out.into_dense().max_abs_diff(&oracle(a)) < 1e-10);
        }
    }

    #[test]
    fn quote_prices_only_the_split_route() {
        let svc = service(2048);
        assert!(svc.quote(48, 16).is_none(), "small problems are not priced");
        let q = svc.quote(128, 32).expect("large problems are");
        assert!(q.total_words > 0);
        assert!(q.root_recv_words > 0);
        // Deterministic: quoting twice is bit-identical.
        assert_eq!(q, svc.quote(128, 32).unwrap());
    }

    #[test]
    fn admission_control_rejects_overpriced_splits() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(4)
            .split_words(2048)
            .admission_words(1)
            .build();
        let a = gen::standard::<f64>(9, 128, 32);
        match svc.submit(a) {
            Err(ShardSubmitError::Rejected {
                a,
                predicted_words,
                budget,
            }) => {
                assert_eq!(a.shape(), (128, 32), "operand handed back intact");
                assert!(predicted_words > budget);
                assert_eq!(budget, 1);
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        // Small problems bypass admission control entirely.
        let h = svc.submit(gen::standard::<f64>(10, 48, 16)).unwrap();
        assert_eq!(h.wait().unwrap().order(), 16);
        let stats = svc.shutdown();
        assert_eq!(stats.rejected_jobs, 1);
        assert_eq!(stats.whole_jobs, 1);
    }

    #[test]
    fn try_submit_accounting_under_backpressure() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(2)
            .queue_capacity(1)
            .split_words(usize::MAX)
            .build();
        let (mut accepted, mut shed) = (0usize, 0usize);
        let mut handles = Vec::new();
        for i in 0..100u64 {
            match svc.try_submit(gen::standard::<f64>(i, 64, 32)) {
                Ok(h) => {
                    accepted += 1;
                    handles.push(h);
                }
                Err(ShardSubmitError::Full(a)) => {
                    shed += 1;
                    assert_eq!(a.shape(), (64, 32), "operand handed back intact");
                }
                other => panic!("service must be alive and nothing splits: {other:?}"),
            }
        }
        assert!(accepted > 0, "some jobs must get through");
        for h in handles {
            assert!(h.wait().is_ok());
        }
        assert_eq!(accepted + shed, 100);
        assert_eq!(svc.shutdown().whole_jobs, accepted);
    }

    #[test]
    fn poison_is_quarantined_and_innocents_complete() {
        let svc = service(usize::MAX);
        let poison = svc.submit_poison();
        // The poison panics its first shard, is requeued solo, panics a
        // second, and the quarantine then convicts it: attempts == 2.
        assert!(matches!(
            poison.wait(),
            Err(JobError::Requeued { attempts: 2 })
        ));
        // Two shards are gone; the service still serves on the rest.
        let inputs: Vec<Matrix<f64>> = (0..8).map(|i| gen::standard::<f64>(i, 32, 16)).collect();
        let handles: Vec<_> = inputs
            .iter()
            .map(|a| svc.submit(a.clone()).unwrap())
            .collect();
        for (h, a) in handles.into_iter().zip(&inputs) {
            let g = h.wait().expect("innocent job completes").into_dense();
            assert!(g.max_abs_diff(&oracle(a)) < 1e-10);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.dead_shards, 2);
        assert_eq!(stats.failed_jobs, 1, "only the poison fails");
        assert_eq!(stats.whole_jobs, 8);
        assert!(stats.requeued_jobs >= 1, "the solo requeue is counted");
        assert_eq!(
            stats.per_shard.iter().filter(|s| s.dead).count(),
            2,
            "per-shard flags agree with the aggregate"
        );
    }

    #[test]
    fn zero_retry_budget_convicts_on_first_panic() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(3)
            .retry_budget(0)
            .split_words(usize::MAX)
            .build();
        assert!(matches!(
            svc.submit_poison().wait(),
            Err(JobError::Requeued { attempts: 1 })
        ));
        let stats = svc.shutdown();
        assert_eq!(stats.dead_shards, 1);
        assert_eq!(stats.failed_jobs, 1);
    }

    #[test]
    fn all_shards_dead_reports_closed() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(1)
            .retry_budget(0)
            .split_words(usize::MAX)
            .build();
        assert!(matches!(
            svc.submit_poison().wait(),
            Err(JobError::Requeued { attempts: 1 })
        ));
        match svc.submit(gen::standard::<f64>(1, 16, 8)) {
            Err(ShardSubmitError::Closed(a)) => assert_eq!(a.shape(), (16, 8)),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(svc.shutdown().dead_shards, 1);
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let svc = service(usize::MAX);
        let a = gen::standard::<f64>(7, 30, 15);
        let handles: Vec<_> = (0..8).map(|_| svc.submit(a.clone()).unwrap()).collect();
        let stats = svc.shutdown();
        assert_eq!(stats.whole_jobs, 8, "accepted jobs are served before exit");
        for h in handles {
            assert!(h.wait().is_ok(), "handle answered even after shutdown");
        }
    }

    #[test]
    fn sharded_service_is_send_and_sync() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<ShardedService<f64>>();
        assert_send_sync::<ShardedService<f32>>();
    }
}
