//! Sharded distributed serving: [`ShardedService`].
//!
//! [`crate::service::AtaService`] batches a flood onto *one* node's
//! pool; [`crate::dist::DistPlan`] splits *one* large problem across
//! simulated ranks. A production front door needs both at once: route a
//! heterogeneous flood so that small Gram problems run whole — one per
//! rank-shard, coalesced into per-shard [`BatchPlan`] dispatches — while
//! problems too large for a single shard split across all P ranks via
//! AtA-D (Algorithm 4). [`ShardedService`] is that router.
//!
//! Four properties make it a serving component rather than a demo:
//!
//! * **Priced routing.** Every split dispatch is quoted *before* it is
//!   accepted, by the bit-exact traffic predictor
//!   (`ata_dist::traffic`): the quoted [`RoutePrice`] words match the
//!   simulator's [`ata_mpisim::RankMetrics`] counters exactly, so
//!   admission control ([`ShardedServiceBuilder::admission_words`])
//!   rejects over-budget problems from *predicted* traffic, not from
//!   observed congestion.
//! * **Backpressure.** Each shard owns a bounded queue; a full preferred
//!   queue spills to the next live shard, and when every live queue is
//!   full [`ShardedService::try_submit`] reports
//!   [`ShardSubmitError::Full`], handing the operand back.
//! * **Failure containment.** A shard worker that panics stops
//!   computing: its accepted-but-unanswered jobs are requeued to
//!   surviving shards under a quarantine policy (requeued jobs run
//!   *solo*, so a job whose solo dispatch panics again is the proven
//!   culprit and is failed with [`JobError::Requeued`] instead of
//!   hunting more shards), capped by a retry budget. The dead shard's
//!   mailbox keeps being drained — a job routed to a dying shard is
//!   forwarded, never stranded. With
//!   [`ShardedServiceBuilder::revive_after`], dead shards return to
//!   duty on probation after the survivors prove the fleet healthy.
//! * **Graceful degradation.** The split lane survives communication
//!   faults on the simulated cluster: a dispatch that fails with a
//!   typed [`ata_dist::DistError`] is retried under a deterministic
//!   exponential backoff ([`RetryPolicy`], slept on the injected
//!   [`Clock`] — never the wall in tests), and when the budget runs out
//!   the job is re-executed *bit-correct* on the shared-memory backend
//!   instead of being failed ([`ShardedStats::degraded_jobs`]). Fault
//!   schedules are injected deterministically with
//!   [`ShardedServiceBuilder::split_chaos`] for drills and chaos tests.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ata_dist::{plan_traffic, DistPlan, RoutePrice};
use ata_mat::{Matrix, Scalar, SymPacked};
use ata_mpisim::{CostModel, FaultPlan, FaultSpec, Universe};
use crossbeam::channel::{self, TrySendError};

use crate::batch::BatchPlan;
use crate::clock::{Clock, WallClock};
use crate::context::{lock_recover, AtaContext, AtaOutput, Output};

pub use crate::service::JobError;

/// Deterministic exponential backoff for the split lane's fault
/// retries: attempt `k` (0-based) failing sleeps
/// `min(base * 2^k, cap)` on the service's injected [`Clock`] before
/// the next attempt, and `budget` retries follow the first attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `budget + 1` attempts run
    /// before the job degrades to the shared-memory backend).
    pub budget: usize,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// Two retries, 10 ms doubling to a 1 s cap.
    fn default() -> Self {
        RetryPolicy {
            budget: 2,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// No retries: the first faulted attempt degrades immediately.
    pub fn none() -> Self {
        RetryPolicy {
            budget: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff slept after failed attempt `attempt` (0-based):
    /// `min(base * 2^attempt, cap)`.
    pub fn backoff(&self, attempt: usize) -> Duration {
        let factor = 1u32 << attempt.min(20);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// Deterministic fault injection for the split lane: each AtA-D
/// dispatch attempt runs on a [`Universe`] with a fresh seeded
/// [`FaultPlan`] (derived from `seed`, the dispatch number and the
/// attempt number) and the given receive deadline, so dropped messages
/// surface as typed timeouts instead of hangs. The same `SplitChaos`
/// always produces the same fault schedule — chaos runs replay.
#[derive(Debug, Clone)]
pub struct SplitChaos {
    /// Base seed every per-attempt fault plan derives from.
    pub seed: u64,
    /// Shape of the fault schedules to draw.
    pub spec: FaultSpec,
    /// Simulated-clock receive deadline (seconds) installed on every
    /// rank; bounds how long a rank waits on a lost message.
    pub recv_deadline: f64,
}

impl SplitChaos {
    /// Chaos with the default [`FaultSpec`] and a 1-second simulated
    /// receive deadline.
    ///
    /// # Panics
    /// Never; see [`SplitChaos::recv_deadline`] for the deadline knob.
    pub fn new(seed: u64) -> Self {
        SplitChaos {
            seed,
            spec: FaultSpec::default(),
            recv_deadline: 1.0,
        }
    }

    /// Replace the fault-schedule shape.
    pub fn spec(mut self, spec: FaultSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replace the simulated receive deadline.
    ///
    /// # Panics
    /// If `secs` is not strictly positive.
    pub fn recv_deadline(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "recv_deadline must be positive");
        self.recv_deadline = secs;
        self
    }
}

/// The result side of a submitted job; [`ShardJobHandle::wait`] blocks
/// until a shard has executed (or given up on) the job.
#[derive(Debug)]
pub struct ShardJobHandle<T: Scalar> {
    recv: channel::Receiver<Result<AtaOutput<T>, JobError>>,
}

impl<T: Scalar> ShardJobHandle<T> {
    /// Block until the job's outcome is known: the result, or the
    /// [`JobError`] explaining why there is none.
    pub fn wait(self) -> Result<AtaOutput<T>, JobError> {
        match self.recv.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(JobError::Closed),
        }
    }

    /// Wait at most `timeout` (wall time) for the outcome. `None` means
    /// the job is still pending — the handle stays valid, so callers
    /// can poll or fall back to a blocking [`ShardJobHandle::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<AtaOutput<T>, JobError>> {
        match self.recv.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(channel::RecvTimeoutError::Timeout) => None,
            Err(channel::RecvTimeoutError::Disconnected) => Some(Err(JobError::Closed)),
        }
    }
}

/// Error returned by [`ShardedService::submit`] and
/// [`ShardedService::try_submit`]; variants carrying the operand hand it
/// back so the caller can retry, shed or reroute.
#[derive(Debug)]
pub enum ShardSubmitError<T: Scalar> {
    /// Every live shard's bounded queue is at capacity (`try_submit`
    /// only) — the backpressure signal.
    Full(Matrix<T>),
    /// Admission control: the traffic predictor priced this problem's
    /// AtA-D split above the configured word budget.
    Rejected {
        /// The operand, handed back.
        a: Matrix<T>,
        /// The quoted per-rank word bill ([`RoutePrice::max_rank_words`]).
        predicted_words: u64,
        /// The configured [`ShardedServiceBuilder::admission_words`] cap.
        budget: u64,
    },
    /// The service has shut down, or every shard has failed.
    Closed(Matrix<T>),
}

/// What a queued job carries: an operand, or an injected failure.
#[derive(Debug)]
enum Payload<T: Scalar> {
    Compute(Matrix<T>),
    /// Failure injection: panics the shard worker that dequeues it.
    Poison,
}

/// One queued job, re-submittable across shards: the payload stays
/// owned until the job is answered, so a panicked shard's jobs can move.
#[derive(Debug)]
struct ShardJob<T: Scalar> {
    payload: Payload<T>,
    resp: channel::Sender<Result<AtaOutput<T>, JobError>>,
    /// Dispatch attempts that ended in a shard panic.
    attempts: usize,
    /// Quarantined after a requeue: runs alone, never coalesced, so a
    /// second panic identifies it as the culprit.
    solo: bool,
    /// Absolute expiry on the service clock; `None` = no deadline.
    deadline: Option<Duration>,
}

impl<T: Scalar> ShardJob<T> {
    fn shape(&self) -> (usize, usize) {
        match &self.payload {
            Payload::Compute(a) => a.shape(),
            Payload::Poison => (0, 0),
        }
    }

    /// Descending-dispatch key: the `m n^2` multiply volume of the
    /// classical product — the same largest-first policy as
    /// [`crate::service::AtaService`]'s worker.
    fn flop_estimate(&self) -> u128 {
        let (m, n) = self.shape();
        m as u128 * n as u128 * n as u128
    }

    fn into_matrix(self) -> Matrix<T> {
        match self.payload {
            Payload::Compute(a) => a,
            Payload::Poison => unreachable!("poison jobs never hand an operand back"),
        }
    }
}

/// Per-shard slot: the queue's sending half plus this shard's counters.
#[derive(Debug)]
struct ShardSlot<T: Scalar> {
    /// `Some` until shutdown; the router and requeuing workers clone it
    /// briefly, so dropping the slot's copy disconnects the queue once
    /// in-flight sends finish.
    sender: Mutex<Option<channel::Sender<ShardJob<T>>>>,
    /// Set when this shard's worker panics; cleared only by probation
    /// revival ([`ShardedServiceBuilder::revive_after`]).
    dead: AtomicBool,
    jobs: AtomicUsize,
    batches: AtomicUsize,
    /// Jobs this shard handed away: panic requeues plus dead-mailbox
    /// forwards.
    requeues: AtomicUsize,
}

/// A shared AtA-D plan with the price quote derived from it, cached per
/// distinct split shape.
type PricedPlan = Arc<(DistPlan, RoutePrice)>;

/// State shared by the router, the shard workers and the split worker.
#[derive(Debug)]
struct Shared<T: Scalar> {
    ctx: AtaContext,
    slots: Vec<ShardSlot<T>>,
    max_batch: usize,
    output: Output,
    retry_budget: usize,
    loggp: CostModel,
    clock: Arc<dyn Clock>,
    retry: RetryPolicy,
    chaos: Option<SplitChaos>,
    /// Clean survivor batches required before one dead shard is revived
    /// on probation; `None` = dead shards stay dead.
    revive_after: Option<usize>,
    /// Shape-keyed cache of the shared AtA-D plan (and its price quote)
    /// the split lane executes — built once per distinct large shape.
    dist_plans: Mutex<HashMap<(usize, usize), PricedPlan>>,
    split_jobs: AtomicUsize,
    failed_jobs: AtomicUsize,
    rejected_jobs: AtomicUsize,
    dead_shards: AtomicUsize,
    degraded_jobs: AtomicUsize,
    expired_jobs: AtomicUsize,
    revived_shards: AtomicUsize,
    split_retries: AtomicUsize,
    /// Successful whole-lane batches since the last death or revival —
    /// the probation meter [`ShardedServiceBuilder::revive_after`] reads.
    clean_batches: AtomicUsize,
    predicted_split_words: AtomicU64,
    simulated_split_words: AtomicU64,
    predicted_root_recv_words: AtomicU64,
    simulated_root_recv_words: AtomicU64,
}

impl<T: Scalar + 'static> Shared<T> {
    /// Fetch or build the shared `(DistPlan, RoutePrice)` for an
    /// `(m, n)` split — the price is derived from the *same* plan the
    /// split lane executes, which is what makes predicted and simulated
    /// words bit-identical.
    fn dist_plan_for(&self, m: usize, n: usize) -> PricedPlan {
        let mut map = lock_recover(&self.dist_plans);
        map.entry((m, n))
            .or_insert_with(|| {
                let cfg = self.ctx.dist_config::<T>();
                let plan = DistPlan::build(m, n, self.slots.len(), &cfg);
                let price = plan_traffic(&plan).price();
                Arc::new((plan, price))
            })
            .clone()
    }

    /// Hand a job to a live shard, round-robin from `from + 1`. With
    /// `panicked` the job came out of a panicked batch: its attempt
    /// count grows and the quarantine policy applies; otherwise this is
    /// a dead shard's mailbox forwarding a routing race, context intact.
    fn reroute(&self, from: usize, job: ShardJob<T>, panicked: bool) {
        let mut job = job;
        if panicked {
            job.attempts += 1;
            if job.solo || job.attempts > self.retry_budget {
                // A solo dispatch that panicked proves the job itself is
                // the trigger — fail it instead of hunting more shards.
                self.failed_jobs.fetch_add(1, Ordering::SeqCst);
                let attempts = job.attempts;
                let _ = job.resp.send(Err(JobError::Requeued { attempts }));
                return;
            }
            job.solo = true;
        }
        self.slots[from].requeues.fetch_add(1, Ordering::SeqCst);
        let p = self.slots.len();
        for k in 1..p {
            let i = (from + k) % p;
            if self.slots[i].dead.load(Ordering::SeqCst) {
                continue;
            }
            let Some(sender) = lock_recover(&self.slots[i].sender).clone() else {
                continue;
            };
            // Blocking send is safe: every shard queue is drained by its
            // worker or, after a panic, by the worker's ghost loop.
            match sender.send(job) {
                Ok(()) => return,
                Err(channel::SendError(back)) => job = back,
            }
        }
        // No surviving shard can take it.
        self.failed_jobs.fetch_add(1, Ordering::SeqCst);
        let attempts = job.attempts;
        let _ = job.resp.send(Err(JobError::Requeued { attempts }));
    }

    /// Probation bookkeeping after a successful whole-lane batch: once
    /// `revive_after` clean batches accumulate while a shard is dead,
    /// one dead shard is returned to duty (its ghost worker resumes
    /// computing on the next dequeue) and the meter resets. A revived
    /// shard that panics again is simply marked dead again — probation
    /// is the ordinary containment machinery, re-armed.
    fn note_clean_batch(&self) {
        let Some(threshold) = self.revive_after else {
            return;
        };
        if self.dead_shards.load(Ordering::SeqCst) == 0 {
            return;
        }
        let clean = self.clean_batches.fetch_add(1, Ordering::SeqCst) + 1;
        if clean < threshold {
            return;
        }
        for slot in &self.slots {
            if slot
                .dead
                .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.clean_batches.store(0, Ordering::SeqCst);
                self.dead_shards.fetch_sub(1, Ordering::SeqCst);
                self.revived_shards.fetch_add(1, Ordering::SeqCst);
                return;
            }
        }
    }

    /// Answer every job in `batch` whose deadline has passed with the
    /// typed expiry; return the still-live remainder.
    fn expire_batch(&self, batch: Vec<ShardJob<T>>) -> Vec<ShardJob<T>> {
        let now = self.clock.now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if job.deadline.is_some_and(|d| now >= d) {
                self.expired_jobs.fetch_add(1, Ordering::SeqCst);
                let _ = job.resp.send(Err(JobError::DeadlineExceeded));
            } else {
                live.push(job);
            }
        }
        live
    }
}

/// One shard's worker loop: drain the queue into largest-first batches,
/// execute through a per-shard [`BatchPlan`], answer the submitters.
/// After a panic the loop degrades to a ghost that only forwards — the
/// shard is dead for compute, but its mailbox never strands a job —
/// until probation revival (if enabled) puts it back on duty.
fn shard_worker<T: Scalar + 'static>(
    shared: Arc<Shared<T>>,
    index: usize,
    receiver: channel::Receiver<ShardJob<T>>,
) {
    let slot = &shared.slots[index];
    let mut pending: Option<ShardJob<T>> = None;
    loop {
        let first = match pending.take() {
            Some(job) => job,
            None => match receiver.recv() {
                Ok(job) => job,
                Err(_) => break,
            },
        };
        if slot.dead.load(Ordering::SeqCst) {
            shared.reroute(index, first, false);
            continue;
        }
        let mut batch = vec![first];
        if !batch[0].solo {
            while batch.len() < shared.max_batch {
                match receiver.try_recv() {
                    // Quarantined jobs must run alone: stop coalescing
                    // and keep the solo job as the next dispatch.
                    Ok(job) if job.solo => {
                        pending = Some(job);
                        break;
                    }
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }
        let batch = shared.expire_batch(batch);
        if batch.is_empty() {
            continue;
        }
        let mut batch = batch;
        batch.sort_by_key(|job| std::cmp::Reverse(job.flop_estimate()));
        let poisoned = batch
            .iter()
            .any(|job| matches!(job.payload, Payload::Poison));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if poisoned {
                panic!("injected shard failure (poison job)");
            }
            let shapes: Vec<(usize, usize)> = batch.iter().map(|job| job.shape()).collect();
            let plan: BatchPlan<T> = shared.ctx.batch_plan(&shapes, shared.output);
            let refs: Vec<_> = batch
                .iter()
                .map(|job| match &job.payload {
                    Payload::Compute(a) => a.as_ref(),
                    Payload::Poison => unreachable!("poisoned batches panic before planning"),
                })
                .collect();
            plan.execute_batch(&refs)
        }));
        match outcome {
            Ok(results) => {
                slot.jobs.fetch_add(batch.len(), Ordering::SeqCst);
                slot.batches.fetch_add(1, Ordering::SeqCst);
                for (job, result) in batch.into_iter().zip(results) {
                    let _ = job.resp.send(Ok(result));
                }
                shared.note_clean_batch();
            }
            Err(_) => {
                slot.dead.store(true, Ordering::SeqCst);
                shared.dead_shards.fetch_add(1, Ordering::SeqCst);
                // A fresh death invalidates progress toward revival.
                shared.clean_batches.store(0, Ordering::SeqCst);
                for job in batch {
                    shared.reroute(index, job, true);
                }
            }
        }
    }
}

/// The per-attempt fault schedule: deterministic in the chaos seed, the
/// dispatch number and the attempt number, so retries see *different*
/// faults (a transient drop clears on retry) while replays of the same
/// service run see identical ones.
fn attempt_universe<T: Scalar>(
    shared: &Shared<T>,
    procs: usize,
    dispatch: u64,
    attempt: u64,
) -> Universe {
    let mut universe = Universe::new(procs, shared.loggp);
    if let Some(chaos) = &shared.chaos {
        let seed = chaos.seed
            ^ dispatch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ attempt.wrapping_mul(0xD1B5_4A32_D192_ED03);
        universe = universe
            .faults(FaultPlan::seeded(seed, procs, &chaos.spec))
            .recv_deadline(chaos.recv_deadline);
    }
    universe
}

/// Execute `a` bit-correct on the shared-memory backend — the split
/// lane's graceful-degradation path once the retry budget is spent.
fn degrade<T: Scalar + 'static>(
    shared: &Shared<T>,
    a: &Matrix<T>,
    resp: &channel::Sender<Result<AtaOutput<T>, JobError>>,
) {
    let plan: BatchPlan<T> = shared.ctx.batch_plan(&[a.shape()], shared.output);
    let mut results = plan.execute_batch(&[a.as_ref()]);
    match results.pop() {
        Some(out) => {
            shared.degraded_jobs.fetch_add(1, Ordering::SeqCst);
            let _ = resp.send(Ok(out));
        }
        None => {
            let _ = resp.send(Err(JobError::Internal));
        }
    }
}

/// The split lane's worker: executes each large job through the shared
/// AtA-D plan on the simulated P-rank cluster, retrying faulted
/// dispatches under the [`RetryPolicy`] backoff and degrading to the
/// shared-memory backend when the budget runs out. Price counters are
/// reconciled only on clean dispatches, where the simulator's words are
/// bit-identical to the predictor's quote.
fn split_worker<T: Scalar + 'static>(
    shared: Arc<Shared<T>>,
    receiver: channel::Receiver<ShardJob<T>>,
) {
    let mut dispatch: u64 = 0;
    while let Ok(job) = receiver.recv() {
        let ShardJob {
            payload,
            resp,
            deadline,
            ..
        } = job;
        let Payload::Compute(a) = payload else {
            // Poison targets shard workers; the split lane ignores it.
            continue;
        };
        if deadline.is_some_and(|d| shared.clock.now() >= d) {
            shared.expired_jobs.fetch_add(1, Ordering::SeqCst);
            let _ = resp.send(Err(JobError::DeadlineExceeded));
            continue;
        }
        let (m, n) = a.shape();
        let entry = shared.dist_plan_for(m, n);
        let (plan, price) = (&entry.0, entry.1);
        dispatch += 1;
        let mut answered = false;
        for attempt in 0..=shared.retry.budget {
            let universe = attempt_universe(&shared, plan.procs(), dispatch, attempt as u64);
            let a_ref = &a;
            let report = universe.run(move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                plan.execute(input, comm)
            });
            let total_words = report.total_words();
            let root_recv_words = report.metrics[0].words_recv;
            let mut lower = None;
            let mut faulted = false;
            for rank_result in report.results {
                match rank_result {
                    Ok(Some(c)) => lower = Some(c),
                    Ok(None) => {}
                    Err(_) => faulted = true,
                }
            }
            if faulted {
                shared.split_retries.fetch_add(1, Ordering::SeqCst);
                if attempt < shared.retry.budget {
                    shared.clock.sleep(shared.retry.backoff(attempt));
                    if deadline.is_some_and(|d| shared.clock.now() >= d) {
                        shared.expired_jobs.fetch_add(1, Ordering::SeqCst);
                        let _ = resp.send(Err(JobError::DeadlineExceeded));
                        answered = true;
                        break;
                    }
                }
                continue;
            }
            // The closure passed to `run` returns Some exactly on rank
            // 0; if the contract is ever broken, fail the job, not the
            // lane — a broken contract will not heal on retry.
            let Some(lower) = lower else {
                let _ = resp.send(Err(JobError::Internal));
                answered = true;
                break;
            };
            shared.split_jobs.fetch_add(1, Ordering::SeqCst);
            shared
                .predicted_split_words
                .fetch_add(price.total_words, Ordering::SeqCst);
            shared
                .simulated_split_words
                .fetch_add(total_words, Ordering::SeqCst);
            shared
                .predicted_root_recv_words
                .fetch_add(price.root_recv_words, Ordering::SeqCst);
            shared
                .simulated_root_recv_words
                .fetch_add(root_recv_words, Ordering::SeqCst);
            let _ = resp.send(Ok(shape_output(lower, shared.output)));
            answered = true;
            break;
        }
        if !answered {
            degrade(&shared, &a, &resp);
        }
    }
}

/// Shape the cluster's lower triangle into the service's output
/// representation.
fn shape_output<T: Scalar>(mut lower: Matrix<T>, output: Output) -> AtaOutput<T> {
    match output {
        Output::Gram => {
            lower.mirror_lower_to_upper();
            AtaOutput::Dense(lower)
        }
        Output::Lower => AtaOutput::Dense(lower),
        Output::Packed => AtaOutput::Packed(SymPacked::from_lower(&lower)),
    }
}

/// One shard's statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Jobs this shard executed to completion.
    pub jobs: usize,
    /// Batched dispatches this shard ran.
    pub batches: usize,
    /// Jobs this shard handed away (panic requeues plus dead-mailbox
    /// forwards).
    pub requeues: usize,
    /// Whether this shard's worker is currently dead (panicked and not
    /// revived).
    pub dead: bool,
}

/// Snapshot of a sharded service's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardedStats {
    /// Per-shard counters, indexed by shard.
    pub per_shard: Vec<ShardStats>,
    /// Jobs routed whole-per-shard and completed.
    pub whole_jobs: usize,
    /// Jobs split across the ranks via AtA-D and completed.
    pub split_jobs: usize,
    /// Requeue events across all shards.
    pub requeued_jobs: usize,
    /// Jobs answered with [`JobError::Requeued`].
    pub failed_jobs: usize,
    /// Jobs refused by admission control.
    pub rejected_jobs: usize,
    /// Shards currently dead (panicked and not revived).
    pub dead_shards: usize,
    /// Split jobs that exhausted the fault-retry budget and completed
    /// on the shared-memory backend instead.
    pub degraded_jobs: usize,
    /// Jobs answered [`JobError::DeadlineExceeded`].
    pub expired_jobs: usize,
    /// Dead shards returned to duty on probation
    /// ([`ShardedServiceBuilder::revive_after`]).
    pub revived_shards: usize,
    /// Split-lane dispatch attempts that failed with a communication
    /// fault (each is retried or, past the budget, degraded).
    pub split_retries: usize,
    /// Predictor-quoted total words across all split dispatches.
    pub predicted_split_words: u64,
    /// Simulator-counted total words across all split dispatches
    /// (bit-identical to the prediction — asserted in the bench record).
    pub simulated_split_words: u64,
    /// Predictor-quoted words converging on rank 0 during retrieval.
    pub predicted_root_recv_words: u64,
    /// Simulator-counted words received by rank 0.
    pub simulated_root_recv_words: u64,
}

impl ShardedStats {
    /// Total jobs that completed with a result: whole-lane, split-lane
    /// and degraded split jobs.
    pub fn completed_jobs(&self) -> usize {
        self.whole_jobs + self.split_jobs + self.degraded_jobs
    }
}

/// Builder for [`ShardedService`] — see [`ShardedService::builder`].
#[derive(Debug)]
pub struct ShardedServiceBuilder {
    ctx: AtaContext,
    shards: usize,
    queue_capacity: usize,
    max_batch: usize,
    output: Output,
    split_words: usize,
    retry_budget: usize,
    admission_words: Option<u64>,
    loggp: CostModel,
    clock: Arc<dyn Clock>,
    retry: RetryPolicy,
    chaos: Option<SplitChaos>,
    revive_after: Option<usize>,
}

impl ShardedServiceBuilder {
    /// Start building a sharded service over `ctx` (shared, not
    /// consumed: plan cores, arenas and the worker pool stay common
    /// property of every front-end on the context).
    pub fn new(ctx: &AtaContext) -> Self {
        ShardedServiceBuilder {
            ctx: ctx.clone(),
            shards: 4,
            queue_capacity: 16,
            max_batch: 8,
            output: Output::Gram,
            split_words: 32 * 1024,
            retry_budget: 2,
            admission_words: None,
            loggp: CostModel::zero(),
            clock: Arc::new(WallClock::new()),
            retry: RetryPolicy::default(),
            chaos: None,
            revive_after: None,
        }
    }

    /// Number of rank-shards `P`. Small problems run whole on one of
    /// them; large problems split across all of them via AtA-D.
    /// Default 4.
    ///
    /// # Panics
    /// If zero.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a sharded service needs at least one shard");
        self.shards = shards;
        self
    }

    /// Bound on each shard's queued (not yet dispatched) jobs; the split
    /// lane uses the same bound. Default 16.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Most jobs one shard coalesces into one batched dispatch.
    /// Default 8.
    ///
    /// # Panics
    /// If zero.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }

    /// Output representation of every result. Default [`Output::Gram`].
    pub fn output(mut self, output: Output) -> Self {
        self.output = output;
        self
    }

    /// The routing threshold, in operand words `m * n`: problems at or
    /// above it split across the ranks via AtA-D, smaller ones run whole
    /// on one shard. Default 32768 (the f64 L2-ish budget the cache
    /// model also defaults around); `usize::MAX` disables splitting.
    pub fn split_words(mut self, words: usize) -> Self {
        self.split_words = words;
        self
    }

    /// How many times a job caught in a panicked batch may be requeued
    /// before it is failed with [`JobError::Requeued`]. Requeued jobs
    /// run solo (quarantine), so one poisonous job stops hunting shards
    /// after its first solo panic regardless of this budget. Default 2.
    pub fn retry_budget(mut self, budget: usize) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Admission budget in predicted per-rank words
    /// ([`RoutePrice::max_rank_words`]): a split dispatch quoted above
    /// this is refused at submission with [`ShardSubmitError::Rejected`].
    /// Default: no cap.
    pub fn admission_words(mut self, words: u64) -> Self {
        self.admission_words = Some(words);
        self
    }

    /// LogGP cost model of the simulated cluster the split lane runs
    /// on. Default [`CostModel::zero`] (pure counting).
    pub fn loggp(mut self, model: CostModel) -> Self {
        self.loggp = model;
        self
    }

    /// The time source deadlines and retry backoff are measured on.
    /// Default [`WallClock`]; tests and chaos drills inject
    /// [`crate::clock::ManualClock`] so modeled backoff costs no wall
    /// time.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Retry policy for split dispatches that fail with a communication
    /// fault. Default [`RetryPolicy::default`] (2 retries, 10 ms
    /// doubling backoff capped at 1 s).
    pub fn split_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Deterministic fault injection on the split lane's simulated
    /// cluster — every dispatch attempt draws a seeded [`FaultPlan`].
    /// Default: no injected faults.
    pub fn split_chaos(mut self, chaos: SplitChaos) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Enable probation revival: after `batches` consecutive clean
    /// whole-lane batches while at least one shard is dead, one dead
    /// shard returns to duty (elastic shard counts). A revived shard
    /// that panics again is contained exactly like the first time.
    /// Default: off — dead shards stay dead.
    ///
    /// # Panics
    /// If `batches` is zero.
    pub fn revive_after(mut self, batches: usize) -> Self {
        assert!(batches > 0, "revive_after needs at least one clean batch");
        self.revive_after = Some(batches);
        self
    }

    /// Spawn the shard workers and the split lane; returns the running
    /// service.
    pub fn build<T: Scalar + 'static>(self) -> ShardedService<T> {
        let mut slots = Vec::with_capacity(self.shards);
        let mut receivers = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let (sender, receiver) = channel::bounded::<ShardJob<T>>(self.queue_capacity);
            slots.push(ShardSlot {
                sender: Mutex::new(Some(sender)),
                dead: AtomicBool::new(false),
                jobs: AtomicUsize::new(0),
                batches: AtomicUsize::new(0),
                requeues: AtomicUsize::new(0),
            });
            receivers.push(receiver);
        }
        let shared = Arc::new(Shared {
            ctx: self.ctx,
            slots,
            max_batch: self.max_batch,
            output: self.output,
            retry_budget: self.retry_budget,
            loggp: self.loggp,
            clock: self.clock,
            retry: self.retry,
            chaos: self.chaos,
            revive_after: self.revive_after,
            dist_plans: Mutex::new(HashMap::new()),
            split_jobs: AtomicUsize::new(0),
            failed_jobs: AtomicUsize::new(0),
            rejected_jobs: AtomicUsize::new(0),
            dead_shards: AtomicUsize::new(0),
            degraded_jobs: AtomicUsize::new(0),
            expired_jobs: AtomicUsize::new(0),
            revived_shards: AtomicUsize::new(0),
            split_retries: AtomicUsize::new(0),
            clean_batches: AtomicUsize::new(0),
            predicted_split_words: AtomicU64::new(0),
            simulated_split_words: AtomicU64::new(0),
            predicted_root_recv_words: AtomicU64::new(0),
            simulated_root_recv_words: AtomicU64::new(0),
        });
        let workers = receivers
            .into_iter()
            .enumerate()
            .map(|(index, receiver)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ata-shard-{index}"))
                    .spawn(move || shard_worker(shared, index, receiver)) // ata-lint: allow(no-raw-spawn): shard serving thread, compute stays in the pool
                    .expect("failed to spawn shard worker") // ata-lint: allow(no-unwrap-in-lib): OS spawn failure at build time is unrecoverable
            })
            .collect();
        let (split_sender, split_receiver) = channel::bounded::<ShardJob<T>>(self.queue_capacity);
        let split_shared = shared.clone();
        let split_worker = std::thread::Builder::new()
            .name("ata-shard-split".into())
            .spawn(move || split_worker(split_shared, split_receiver)) // ata-lint: allow(no-raw-spawn): split-lane serving thread, compute stays in the simulator
            .expect("failed to spawn split worker"); // ata-lint: allow(no-unwrap-in-lib): OS spawn failure at build time is unrecoverable
        ShardedService {
            shared,
            split_sender: Some(split_sender),
            workers,
            split_worker: Some(split_worker),
            cursor: AtomicUsize::new(0),
            split_words: self.split_words,
            admission_words: self.admission_words,
        }
    }
}

/// The sharded serving front door: P rank-shards with bounded queues
/// for whole small problems, one AtA-D split lane for large ones,
/// traffic-priced routing, requeue-on-shard-failure, and
/// retry-then-degrade on injected communication faults. [`Send`] and
/// [`Sync`] — share it behind an `Arc` and submit from any number of
/// threads.
///
/// Dropping the service closes every queue and joins the workers after
/// they drain the jobs already accepted.
///
/// # Example
///
/// ```
/// use ata::shard::ShardedServiceBuilder;
/// use ata::AtaContext;
/// use ata::mat::gen;
///
/// let ctx = AtaContext::serial();
/// let svc = ShardedServiceBuilder::new(&ctx)
///     .shards(4)
///     .split_words(16 * 1024)
///     .build::<f64>();
/// // 96 x 40 = 3840 words: routed whole to one shard.
/// let small = svc.submit(gen::standard::<f64>(1, 96, 40)).unwrap();
/// // 512 x 64 = 32768 words: split across the 4 ranks via AtA-D.
/// let large = svc.submit(gen::standard::<f64>(2, 512, 64)).unwrap();
/// assert_eq!(small.wait().unwrap().order(), 40);
/// assert_eq!(large.wait().unwrap().order(), 64);
/// let stats = svc.shutdown();
/// assert_eq!(stats.whole_jobs, 1);
/// assert_eq!(stats.split_jobs, 1);
/// assert_eq!(stats.predicted_split_words, stats.simulated_split_words);
/// ```
#[derive(Debug)]
pub struct ShardedService<T: Scalar> {
    shared: Arc<Shared<T>>,
    /// `Some` until shutdown; dropped before joining the split worker.
    split_sender: Option<channel::Sender<ShardJob<T>>>,
    workers: Vec<JoinHandle<()>>,
    split_worker: Option<JoinHandle<()>>,
    /// Round-robin routing cursor over the shards.
    cursor: AtomicUsize,
    split_words: usize,
    admission_words: Option<u64>,
}

impl<T: Scalar + 'static> ShardedService<T> {
    /// Start building a sharded service over `ctx` — see
    /// [`ShardedServiceBuilder::new`].
    pub fn builder(ctx: &AtaContext) -> ShardedServiceBuilder {
        ShardedServiceBuilder::new(ctx)
    }

    /// Number of rank-shards.
    pub fn shards(&self) -> usize {
        self.shared.slots.len()
    }

    /// The routing threshold in operand words.
    pub fn split_words(&self) -> usize {
        self.split_words
    }

    /// Whether an `(m, n)` problem would split across the ranks.
    fn is_split(&self, m: usize, n: usize) -> bool {
        self.shards() > 1 && m > 0 && n > 0 && m.saturating_mul(n) >= self.split_words
    }

    /// The routing decision and its price for an `(m, n)` problem:
    /// `None` when it would run whole on one shard, the predictor's
    /// quote when it would split via AtA-D — the same quote admission
    /// control uses, exposed so callers can pre-flight a workload.
    pub fn quote(&self, m: usize, n: usize) -> Option<RoutePrice> {
        self.is_split(m, n)
            .then(|| self.shared.dist_plan_for(m, n).1)
    }

    /// Submit a job, blocking while the routed queue is full. Admission
    /// control still applies ([`ShardSubmitError::Rejected`]), and a
    /// fully failed or shut-down service reports
    /// [`ShardSubmitError::Closed`]; `Full` never occurs here.
    pub fn submit(&self, a: Matrix<T>) -> Result<ShardJobHandle<T>, ShardSubmitError<T>> {
        self.submit_inner(a, true, None)
    }

    /// Submit without blocking: [`ShardSubmitError::Full`] when every
    /// live shard's queue (or, for a large problem, the split lane) is
    /// at capacity — the backpressure signal, handing the operand back.
    pub fn try_submit(&self, a: Matrix<T>) -> Result<ShardJobHandle<T>, ShardSubmitError<T>> {
        self.submit_inner(a, false, None)
    }

    /// Submit with an expiry: if the job is still queued `deadline`
    /// from now (on the service's injected clock) when a worker reaches
    /// it — including after split-lane retry backoff — it is answered
    /// [`JobError::DeadlineExceeded`] instead of executed.
    pub fn submit_with_deadline(
        &self,
        a: Matrix<T>,
        deadline: Duration,
    ) -> Result<ShardJobHandle<T>, ShardSubmitError<T>> {
        let expiry = self.shared.clock.now().saturating_add(deadline);
        self.submit_inner(a, true, Some(expiry))
    }

    fn submit_inner(
        &self,
        a: Matrix<T>,
        blocking: bool,
        deadline: Option<Duration>,
    ) -> Result<ShardJobHandle<T>, ShardSubmitError<T>> {
        let (m, n) = a.shape();
        if self.is_split(m, n) {
            // Price the split before dispatch; the same cached plan the
            // split lane will execute backs the quote.
            let price = self.shared.dist_plan_for(m, n).1;
            if let Some(budget) = self.admission_words {
                if price.max_rank_words > budget {
                    self.shared.rejected_jobs.fetch_add(1, Ordering::SeqCst);
                    return Err(ShardSubmitError::Rejected {
                        a,
                        predicted_words: price.max_rank_words,
                        budget,
                    });
                }
            }
            let (resp, recv) = channel::unbounded();
            let job = ShardJob {
                payload: Payload::Compute(a),
                resp,
                attempts: 0,
                solo: false,
                deadline,
            };
            let Some(sender) = self.split_sender.as_ref() else {
                return Err(ShardSubmitError::Closed(job.into_matrix()));
            };
            return if blocking {
                match sender.send(job) {
                    Ok(()) => Ok(ShardJobHandle { recv }),
                    Err(channel::SendError(job)) => {
                        Err(ShardSubmitError::Closed(job.into_matrix()))
                    }
                }
            } else {
                match sender.try_send(job) {
                    Ok(()) => Ok(ShardJobHandle { recv }),
                    Err(TrySendError::Full(job)) => Err(ShardSubmitError::Full(job.into_matrix())),
                    Err(TrySendError::Disconnected(job)) => {
                        Err(ShardSubmitError::Closed(job.into_matrix()))
                    }
                }
            };
        }
        let (resp, recv) = channel::unbounded();
        let job = ShardJob {
            payload: Payload::Compute(a),
            resp,
            attempts: 0,
            solo: false,
            deadline,
        };
        match self.route_to_shard(job, blocking) {
            Ok(()) => Ok(ShardJobHandle { recv }),
            Err((job, full)) => {
                let a = job.into_matrix();
                Err(if full {
                    ShardSubmitError::Full(a)
                } else {
                    ShardSubmitError::Closed(a)
                })
            }
        }
    }

    /// Route a job round-robin over the live shards; non-blocking mode
    /// spills to the next live shard when the preferred queue is full.
    /// On failure returns the job and whether backpressure (rather than
    /// a closed/failed service) was the cause.
    fn route_to_shard(&self, job: ShardJob<T>, blocking: bool) -> Result<(), (ShardJob<T>, bool)> {
        let p = self.shards();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let mut job = job;
        let mut saw_full = false;
        for k in 0..p {
            let i = (start + k) % p;
            if self.shared.slots[i].dead.load(Ordering::SeqCst) {
                continue;
            }
            let Some(sender) = lock_recover(&self.shared.slots[i].sender).clone() else {
                continue;
            };
            if blocking {
                match sender.send(job) {
                    Ok(()) => return Ok(()),
                    Err(channel::SendError(back)) => job = back,
                }
            } else {
                match sender.try_send(job) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Full(back)) => {
                        saw_full = true;
                        job = back;
                    }
                    Err(TrySendError::Disconnected(back)) => job = back,
                }
            }
        }
        Err((job, saw_full))
    }

    /// Failure injection: enqueue a job that panics the shard worker
    /// dequeuing it (together with whatever batch it was coalesced
    /// into — those jobs exercise the requeue path). The handle reports
    /// [`JobError::Requeued`] once the quarantine gives up on the
    /// poison. For shard-failure tests and chaos drills — not part of
    /// the supported serving API.
    #[doc(hidden)]
    pub fn submit_poison(&self) -> ShardJobHandle<T> {
        let (resp, recv) = channel::unbounded();
        let job = ShardJob {
            payload: Payload::Poison,
            resp,
            attempts: 0,
            solo: false,
            deadline: None,
        };
        if let Err((job, _)) = self.route_to_shard(job, true) {
            let _ = job.resp.send(Err(JobError::Closed));
        }
        ShardJobHandle { recv }
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ShardedStats {
        let per_shard: Vec<ShardStats> = self
            .shared
            .slots
            .iter()
            .map(|s| ShardStats {
                jobs: s.jobs.load(Ordering::SeqCst),
                batches: s.batches.load(Ordering::SeqCst),
                requeues: s.requeues.load(Ordering::SeqCst),
                dead: s.dead.load(Ordering::SeqCst),
            })
            .collect();
        let whole_jobs = per_shard.iter().map(|s| s.jobs).sum();
        let requeued_jobs = per_shard.iter().map(|s| s.requeues).sum();
        ShardedStats {
            per_shard,
            whole_jobs,
            split_jobs: self.shared.split_jobs.load(Ordering::SeqCst),
            requeued_jobs,
            failed_jobs: self.shared.failed_jobs.load(Ordering::SeqCst),
            rejected_jobs: self.shared.rejected_jobs.load(Ordering::SeqCst),
            dead_shards: self.shared.dead_shards.load(Ordering::SeqCst),
            degraded_jobs: self.shared.degraded_jobs.load(Ordering::SeqCst),
            expired_jobs: self.shared.expired_jobs.load(Ordering::SeqCst),
            revived_shards: self.shared.revived_shards.load(Ordering::SeqCst),
            split_retries: self.shared.split_retries.load(Ordering::SeqCst),
            predicted_split_words: self.shared.predicted_split_words.load(Ordering::SeqCst),
            simulated_split_words: self.shared.simulated_split_words.load(Ordering::SeqCst),
            predicted_root_recv_words: self.shared.predicted_root_recv_words.load(Ordering::SeqCst),
            simulated_root_recv_words: self.shared.simulated_root_recv_words.load(Ordering::SeqCst),
        }
    }

    /// Close every queue, let the workers drain the accepted jobs, and
    /// join them. Equivalent to dropping the service, but explicit and
    /// returning the final statistics.
    pub fn shutdown(mut self) -> ShardedStats {
        self.close_and_join(true);
        self.stats()
    }

    fn close_and_join(&mut self, loud: bool) {
        for slot in &self.shared.slots {
            drop(lock_recover(&slot.sender).take());
        }
        drop(self.split_sender.take());
        let mut payload = None;
        for worker in self.workers.drain(..) {
            if let Err(p) = worker.join() {
                payload.get_or_insert(p);
            }
        }
        if let Some(worker) = self.split_worker.take() {
            if let Err(p) = worker.join() {
                payload.get_or_insert(p);
            }
        }
        // Shard panics were already contained (dead flag + requeue);
        // only an unexpected escape reaches here.
        if loud {
            if let Some(p) = payload {
                std::panic::resume_unwind(p);
            }
        }
    }
}

impl<T: Scalar> Drop for ShardedService<T> {
    fn drop(&mut self) {
        for slot in &self.shared.slots {
            if let Ok(mut sender) = slot.sender.lock() {
                drop(sender.take());
            }
        }
        drop(self.split_sender.take());
        for worker in self.workers.drain(..) {
            // Drop must not panic; shutdown() is the loud path.
            let _ = worker.join();
        }
        if let Some(worker) = self.split_worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use ata_mat::{gen, reference};

    fn oracle(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.cols();
        let mut c = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        c.mirror_lower_to_upper();
        c
    }

    fn service(split_words: usize) -> ShardedService<f64> {
        ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(4)
            .split_words(split_words)
            .build()
    }

    #[test]
    fn routes_small_whole_and_large_split() {
        let svc = service(2048);
        // 48 x 16 = 768 words: whole-per-shard. 128 x 32 = 4096: split.
        let smalls: Vec<Matrix<f64>> = (0..6).map(|i| gen::standard::<f64>(i, 48, 16)).collect();
        let larges: Vec<Matrix<f64>> = (0..2)
            .map(|i| gen::standard::<f64>(100 + i, 128, 32))
            .collect();
        let hs: Vec<_> = smalls
            .iter()
            .map(|a| svc.submit(a.clone()).unwrap())
            .collect();
        let hl: Vec<_> = larges
            .iter()
            .map(|a| svc.submit(a.clone()).unwrap())
            .collect();
        for (h, a) in hs.into_iter().zip(&smalls) {
            let g = h.wait().expect("whole job completes").into_dense();
            assert!(g.max_abs_diff(&oracle(a)) < 1e-10);
        }
        for (h, a) in hl.into_iter().zip(&larges) {
            let g = h.wait().expect("split job completes").into_dense();
            assert!(g.max_abs_diff(&oracle(a)) < 1e-10);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.whole_jobs, 6);
        assert_eq!(stats.split_jobs, 2);
        assert_eq!(stats.completed_jobs(), 8);
        assert_eq!(stats.failed_jobs, 0);
        assert_eq!(stats.dead_shards, 0);
        assert_eq!(stats.degraded_jobs, 0);
        assert_eq!(stats.split_retries, 0, "no chaos, no faulted attempts");
        assert!(stats.predicted_split_words > 0, "4-rank splits communicate");
        // The routing quote and the simulator's counters agree bit-exactly.
        assert_eq!(stats.predicted_split_words, stats.simulated_split_words);
        assert_eq!(
            stats.predicted_root_recv_words,
            stats.simulated_root_recv_words
        );
    }

    #[test]
    fn packed_output_round_trips_through_both_routes() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(2)
            .split_words(2048)
            .output(Output::Packed)
            .build();
        let small = gen::standard::<f64>(3, 40, 12);
        let large = gen::standard::<f64>(4, 96, 48);
        let hs = svc.submit(small.clone()).unwrap();
        let hl = svc.submit(large.clone()).unwrap();
        for (h, a) in [(hs, &small), (hl, &large)] {
            let out = h.wait().expect("completes");
            assert!(matches!(out, AtaOutput::Packed(_)));
            assert!(out.into_dense().max_abs_diff(&oracle(a)) < 1e-10);
        }
    }

    #[test]
    fn quote_prices_only_the_split_route() {
        let svc = service(2048);
        assert!(svc.quote(48, 16).is_none(), "small problems are not priced");
        let q = svc.quote(128, 32).expect("large problems are");
        assert!(q.total_words > 0);
        assert!(q.root_recv_words > 0);
        // Deterministic: quoting twice is bit-identical.
        assert_eq!(q, svc.quote(128, 32).unwrap());
    }

    #[test]
    fn admission_control_rejects_overpriced_splits() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(4)
            .split_words(2048)
            .admission_words(1)
            .build();
        let a = gen::standard::<f64>(9, 128, 32);
        match svc.submit(a) {
            Err(ShardSubmitError::Rejected {
                a,
                predicted_words,
                budget,
            }) => {
                assert_eq!(a.shape(), (128, 32), "operand handed back intact");
                assert!(predicted_words > budget);
                assert_eq!(budget, 1);
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        // Small problems bypass admission control entirely.
        let h = svc.submit(gen::standard::<f64>(10, 48, 16)).unwrap();
        assert_eq!(h.wait().unwrap().order(), 16);
        let stats = svc.shutdown();
        assert_eq!(stats.rejected_jobs, 1);
        assert_eq!(stats.whole_jobs, 1);
    }

    #[test]
    fn try_submit_accounting_under_backpressure() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(2)
            .queue_capacity(1)
            .split_words(usize::MAX)
            .build();
        let (mut accepted, mut shed) = (0usize, 0usize);
        let mut handles = Vec::new();
        for i in 0..100u64 {
            match svc.try_submit(gen::standard::<f64>(i, 64, 32)) {
                Ok(h) => {
                    accepted += 1;
                    handles.push(h);
                }
                Err(ShardSubmitError::Full(a)) => {
                    shed += 1;
                    assert_eq!(a.shape(), (64, 32), "operand handed back intact");
                }
                other => panic!("service must be alive and nothing splits: {other:?}"),
            }
        }
        assert!(accepted > 0, "some jobs must get through");
        for h in handles {
            assert!(h.wait().is_ok());
        }
        assert_eq!(accepted + shed, 100);
        assert_eq!(svc.shutdown().whole_jobs, accepted);
    }

    #[test]
    fn poison_is_quarantined_and_innocents_complete() {
        let svc = service(usize::MAX);
        let poison = svc.submit_poison();
        // The poison panics its first shard, is requeued solo, panics a
        // second, and the quarantine then convicts it: attempts == 2.
        assert!(matches!(
            poison.wait(),
            Err(JobError::Requeued { attempts: 2 })
        ));
        // Two shards are gone; the service still serves on the rest.
        let inputs: Vec<Matrix<f64>> = (0..8).map(|i| gen::standard::<f64>(i, 32, 16)).collect();
        let handles: Vec<_> = inputs
            .iter()
            .map(|a| svc.submit(a.clone()).unwrap())
            .collect();
        for (h, a) in handles.into_iter().zip(&inputs) {
            let g = h.wait().expect("innocent job completes").into_dense();
            assert!(g.max_abs_diff(&oracle(a)) < 1e-10);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.dead_shards, 2);
        assert_eq!(stats.failed_jobs, 1, "only the poison fails");
        assert_eq!(stats.whole_jobs, 8);
        assert_eq!(stats.revived_shards, 0, "revival is opt-in");
        assert!(stats.requeued_jobs >= 1, "the solo requeue is counted");
        assert_eq!(
            stats.per_shard.iter().filter(|s| s.dead).count(),
            2,
            "per-shard flags agree with the aggregate"
        );
    }

    #[test]
    fn zero_retry_budget_convicts_on_first_panic() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(3)
            .retry_budget(0)
            .split_words(usize::MAX)
            .build();
        assert!(matches!(
            svc.submit_poison().wait(),
            Err(JobError::Requeued { attempts: 1 })
        ));
        let stats = svc.shutdown();
        assert_eq!(stats.dead_shards, 1);
        assert_eq!(stats.failed_jobs, 1);
    }

    #[test]
    fn all_shards_dead_reports_closed() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(1)
            .retry_budget(0)
            .split_words(usize::MAX)
            .build();
        assert!(matches!(
            svc.submit_poison().wait(),
            Err(JobError::Requeued { attempts: 1 })
        ));
        match svc.submit(gen::standard::<f64>(1, 16, 8)) {
            Err(ShardSubmitError::Closed(a)) => assert_eq!(a.shape(), (16, 8)),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(svc.shutdown().dead_shards, 1);
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let svc = service(usize::MAX);
        let a = gen::standard::<f64>(7, 30, 15);
        let handles: Vec<_> = (0..8).map(|_| svc.submit(a.clone()).unwrap()).collect();
        let stats = svc.shutdown();
        assert_eq!(stats.whole_jobs, 8, "accepted jobs are served before exit");
        for h in handles {
            assert!(h.wait().is_ok(), "handle answered even after shutdown");
        }
    }

    #[test]
    fn shutdown_under_full_queues_answers_every_accepted_job() {
        // Saturate every bounded queue with try_submit, then shut down:
        // each accepted job must be answered with a result or a typed
        // error — never left hanging, even waited on after shutdown.
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(2)
            .queue_capacity(2)
            .split_words(usize::MAX)
            .build();
        let mut handles = Vec::new();
        for i in 0..64u64 {
            match svc.try_submit(gen::standard::<f64>(i, 40, 20)) {
                Ok(h) => handles.push(h),
                Err(ShardSubmitError::Full(_)) => {}
                other => panic!("service must be alive: {other:?}"),
            }
        }
        let accepted = handles.len();
        let stats = svc.shutdown();
        assert_eq!(stats.whole_jobs, accepted, "every accepted job executed");
        for h in handles {
            assert!(h.wait().is_ok(), "waiting after shutdown still answers");
        }
    }

    #[test]
    fn zero_deadline_expires_on_both_lanes() {
        let clock = Arc::new(ManualClock::new());
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(2)
            .split_words(2048)
            .clock(clock)
            .build();
        // Whole lane (40 x 20 = 800 words) and split lane (96 x 48 =
        // 4608 words), both with an already-passed deadline.
        let whole = svc
            .submit_with_deadline(gen::standard::<f64>(1, 40, 20), Duration::ZERO)
            .unwrap();
        let split = svc
            .submit_with_deadline(gen::standard::<f64>(2, 96, 48), Duration::ZERO)
            .unwrap();
        assert!(matches!(whole.wait(), Err(JobError::DeadlineExceeded)));
        assert!(matches!(split.wait(), Err(JobError::DeadlineExceeded)));
        // Generous deadlines complete on both lanes.
        let whole = svc
            .submit_with_deadline(gen::standard::<f64>(3, 40, 20), Duration::from_secs(60))
            .unwrap();
        let split = svc
            .submit_with_deadline(gen::standard::<f64>(4, 96, 48), Duration::from_secs(60))
            .unwrap();
        assert!(whole.wait().is_ok());
        assert!(split.wait().is_ok());
        let stats = svc.shutdown();
        assert_eq!(stats.expired_jobs, 2);
        assert_eq!(stats.whole_jobs, 1);
        assert_eq!(stats.split_jobs, 1);
    }

    #[test]
    fn wait_timeout_polls_then_delivers() {
        let svc = service(usize::MAX);
        let a = gen::standard::<f64>(11, 48, 24);
        let h = svc.submit(a.clone()).unwrap();
        let out = loop {
            match h.wait_timeout(Duration::from_millis(10)) {
                Some(out) => break out,
                None => continue,
            }
        };
        assert!(
            out.expect("completes")
                .into_dense()
                .max_abs_diff(&oracle(&a))
                < 1e-10
        );
        svc.shutdown();
    }

    #[test]
    fn delay_only_chaos_completes_bit_identical() {
        // Delay-only fault schedules under a generous receive deadline
        // never lose a message: every split dispatch succeeds (possibly
        // late on the simulated clock) with bit-identical results and
        // exact counter reconciliation.
        let larges: Vec<Matrix<f64>> = (0..4)
            .map(|i| gen::standard::<f64>(300 + i, 128, 32))
            .collect();
        let clean: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(4)
            .split_words(2048)
            .build();
        let expected: Vec<Matrix<f64>> = larges
            .iter()
            .map(|a| {
                clean
                    .submit(a.clone())
                    .unwrap()
                    .wait()
                    .unwrap()
                    .into_dense()
            })
            .collect();
        clean.shutdown();

        let chaotic: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(4)
            .split_words(2048)
            .clock(Arc::new(ManualClock::new()))
            .split_chaos(
                SplitChaos::new(42)
                    .spec(FaultSpec::delays_only())
                    .recv_deadline(10.0),
            )
            .build();
        let handles: Vec<_> = larges
            .iter()
            .map(|a| chaotic.submit(a.clone()).unwrap())
            .collect();
        for (h, want) in handles.into_iter().zip(&expected) {
            let got = h.wait().expect("delayed but delivered").into_dense();
            assert_eq!(got.max_abs_diff(want), 0.0, "delays never change bits");
        }
        let stats = chaotic.shutdown();
        assert_eq!(stats.split_jobs, 4);
        assert_eq!(stats.degraded_jobs, 0);
        assert_eq!(stats.split_retries, 0, "nothing times out under delays");
        assert_eq!(stats.predicted_split_words, stats.simulated_split_words);
    }

    #[test]
    fn chaos_sweep_degrades_but_never_corrupts() {
        // Full chaos (drops + delays + crashes) with no retries: every
        // job still completes — split or degraded — and every result is
        // correct. Backoff runs on the manual clock, so the sweep costs
        // no wall time. The accounting identity is the chaos contract:
        // split + degraded == accepted, and degraded > 0 across this
        // seed sweep (drops/crashes do fire).
        let clock = Arc::new(ManualClock::new());
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(4)
            .split_words(2048)
            .clock(clock)
            .split_retry(RetryPolicy {
                budget: 1,
                ..RetryPolicy::default()
            })
            .split_chaos(SplitChaos::new(7).recv_deadline(0.5))
            .build();
        let inputs: Vec<Matrix<f64>> = (0..24)
            .map(|i| gen::standard::<f64>(500 + i, 128, 32))
            .collect();
        let handles: Vec<_> = inputs
            .iter()
            .map(|a| svc.submit(a.clone()).unwrap())
            .collect();
        for (h, a) in handles.into_iter().zip(&inputs) {
            let g = h.wait().expect("split or degraded, never failed");
            assert!(g.into_dense().max_abs_diff(&oracle(a)) < 1e-10);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.split_jobs + stats.degraded_jobs, 24);
        assert_eq!(stats.completed_jobs(), 24);
        assert!(
            stats.split_retries > 0,
            "the default FaultSpec fires across 24 dispatches"
        );
        assert!(
            stats.degraded_jobs > 0,
            "budget 1 with recurring faults must degrade at least once"
        );
        // Counters reconcile exactly: only clean dispatches are billed.
        assert_eq!(stats.predicted_split_words, stats.simulated_split_words);
        assert_eq!(
            stats.predicted_root_recv_words,
            stats.simulated_root_recv_words
        );
    }

    #[test]
    fn revive_after_returns_dead_shards_to_duty() {
        let svc: ShardedService<f64> = ShardedServiceBuilder::new(&AtaContext::serial())
            .shards(4)
            .split_words(usize::MAX)
            .revive_after(2)
            .build();
        // The poison kills two shards (first batch + solo retry).
        assert!(svc.submit_poison().wait().is_err());
        // Sequential submissions: each is its own clean batch on a
        // survivor, feeding the probation meter until both shards are
        // back. (2 clean batches per revival, 2 revivals.)
        for i in 0..12u64 {
            let a = gen::standard::<f64>(i, 32, 16);
            let g = svc.submit(a.clone()).unwrap().wait().expect("completes");
            assert!(g.into_dense().max_abs_diff(&oracle(&a)) < 1e-10);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.revived_shards, 2, "both dead shards return");
        assert_eq!(stats.dead_shards, 0);
        assert_eq!(
            stats.per_shard.iter().filter(|s| s.dead).count(),
            0,
            "per-shard flags cleared on revival"
        );
        assert_eq!(stats.whole_jobs, 12);
        assert_eq!(stats.failed_jobs, 1, "only the poison failed");
    }

    #[test]
    fn sharded_service_is_send_and_sync() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<ShardedService<f64>>();
        assert_send_sync::<ShardedService<f32>>();
    }
}
