//! Discrete heat kernel via a symmetric product — the paper's geometry
//! application (§1): `K(t) = Phi E(t) Phi^T` with `E(t) = exp(-Lambda t)`
//! can be computed as `K(t) = B B^T` where `B = Phi E(t)^{1/2}`, i.e. a
//! single matrix-times-its-transpose product (Zeng et al., cited
//! as [38]).
//!
//! We use the path graph on `n` vertices, whose Laplacian eigenpairs are
//! known in closed form, build `B`, and compute `K(t) = B B^T` as
//! `(B^T)^T (B^T)` with AtA. The example verifies the defining
//! properties of a heat kernel: symmetry, unit row sums (heat
//! conservation), positivity of the diagonal, and convergence to the
//! uniform distribution as `t` grows.
//!
//! ```text
//! cargo run --release --example heat_kernel [-- <n> <t>]
//! ```

use ata::mat::Matrix;
use ata::AtaContext;
use std::f64::consts::PI;
use std::num::NonZeroUsize;

/// Eigenvalues of the path-graph Laplacian: `lambda_k = 2 - 2 cos(pi k / n)`.
fn eigenvalue(n: usize, k: usize) -> f64 {
    2.0 - 2.0 * (PI * k as f64 / n as f64).cos()
}

/// Orthonormal eigenvector entry `phi_k(i)` of the path-graph Laplacian.
fn eigenvector(n: usize, k: usize, i: usize) -> f64 {
    if k == 0 {
        (1.0 / n as f64).sqrt()
    } else {
        (2.0 / n as f64).sqrt() * (PI * k as f64 * (i as f64 + 0.5) / n as f64).cos()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(400);
    let t: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);

    println!("heat kernel on the path graph: n = {n}, t = {t}");

    // B^T = E(t)^{1/2} Phi^T: row k of B^T is sqrt(exp(-lambda_k t)) phi_k.
    // K = B B^T = (B^T)^T (B^T) — exactly the AtA contract.
    let bt = Matrix::from_fn(n, n, |k, i| {
        (-eigenvalue(n, k) * t / 2.0).exp() * eigenvector(n, k, i)
    });
    let ctx = AtaContext::shared(NonZeroUsize::new(4).expect("4 > 0"));
    let k_t = ctx.gram(bt.as_ref());

    // 1. Symmetry (inherent to the product, checked anyway).
    assert!(k_t.is_symmetric(1e-12), "heat kernel must be symmetric");

    // 2. Heat conservation: L 1 = 0 => K(t) 1 = 1 (unit row sums).
    let mut worst_row_sum = 0.0f64;
    for i in 0..n {
        let s: f64 = k_t.row(i).iter().sum();
        worst_row_sum = worst_row_sum.max((s - 1.0).abs());
    }
    println!("max |row sum - 1|       = {worst_row_sum:.3e}");
    assert!(worst_row_sum < 1e-8, "heat must be conserved");

    // 3. Positive diagonal (return probability).
    let min_diag = (0..n).map(|i| k_t[(i, i)]).fold(f64::INFINITY, f64::min);
    println!("min diagonal entry      = {min_diag:.3e}");
    assert!(min_diag > 0.0);

    // 4. Long-time limit: K(t) -> uniform 1/n.
    let bt_long = Matrix::from_fn(n, n, |k, i| {
        (-eigenvalue(n, k) * 200.0 / 2.0).exp() * eigenvector(n, k, i)
    });
    let k_long = AtaContext::serial().gram(bt_long.as_ref());
    let mut worst_uniform = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            worst_uniform = worst_uniform.max((k_long[(i, j)] - 1.0 / n as f64).abs());
        }
    }
    println!("max |K(200) - 1/n|      = {worst_uniform:.3e}");
    assert!(worst_uniform < 1e-8, "heat kernel must converge to uniform");

    // 5. Short-time locality: far-apart vertices exchange little heat.
    let far = k_t[(0, n - 1)].abs();
    let near = k_t[(0, 0)];
    println!("K(t)[0,0] / K(t)[0,n-1] = {:.3e}", near / far.max(1e-300));
    assert!(near > far * 1e3, "short-time kernel must be local");

    println!("heat-kernel properties verified — OK");
}
