//! Streaming covariance over an event stream that never fits in memory
//! — the `GramAccumulator` serving shape.
//!
//! ```text
//! cargo run --release --example streaming_covariance [-- <batches> <rows_per_batch> <features>]
//! ```
//!
//! A covariance/PCA pipeline over logs or events sees its data matrix
//! `X` arrive as row batches, and `X^T X = Σᵢ Xᵢ^T Xᵢ` means the full
//! `X` never needs to exist: this example "receives" `batches` chunks
//! of `rows_per_batch` observations, folds each into a running
//! [`ata::GramAccumulator`], takes a mid-stream snapshot (a live
//! checkpoint of the estimator), and finishes with the exact same
//! covariance the resident computation would produce — while holding
//! only one chunk plus the `n x n` accumulator at any moment. A second
//! pass demonstrates the exponentially-weighted variant via
//! [`ata::GramAccumulator::decay`].

use ata::{AtaContext, GramAccumulator, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One "incoming" batch of observations from a planted one-factor
/// model; in production this would be the next poll of an event queue.
fn next_batch(rng: &mut StdRng, rows: usize, n: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, n, |_, j| {
        let _ = j;
        rng.random_range(-1.0..1.0f64)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let batches: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(64);
    let rows: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(48);

    let ctx = AtaContext::serial();
    println!("streaming {batches} batches of {rows} x {n} (total {} rows; resident: one batch + the {n} x {n} accumulator)",
        batches * rows);

    // --- Pass 1: plain running covariance with a mid-stream snapshot.
    let mut rng = StdRng::seed_from_u64(2021);
    let mut acc: GramAccumulator<f64> = ctx.gram_accumulator(n);
    let t0 = std::time::Instant::now();
    let mut resident = Matrix::<f64>::zeros(batches * rows, n); // oracle only
    for b in 0..batches {
        let chunk = next_batch(&mut rng, rows, n);
        for i in 0..rows {
            resident.row_mut(b * rows + i).copy_from_slice(chunk.row(i));
        }
        acc.push(chunk.as_ref());
        if b == batches / 2 {
            let checkpoint = acc.snapshot().into_dense();
            println!(
                "  checkpoint after {} rows: trace = {:.2} (estimator served mid-stream)",
                acc.rows(),
                (0..n).map(|j| checkpoint[(j, j)]).sum::<f64>()
            );
        }
    }
    let streamed = acc.finish().into_dense();
    let secs = t0.elapsed().as_secs_f64();

    // The one-shot oracle on the fully resident matrix.
    let oneshot = ctx.gram(resident.as_ref());
    let diff = streamed.max_abs_diff(&oneshot);
    println!(
        "streamed Gram in {secs:.3} s; max |streamed - resident| = {diff:.3e} (tolerance-level)"
    );
    assert!(
        diff <= ata::mat::ops::product_tol::<f64>(batches * rows, n, (batches * rows) as f64) * 4.0,
        "streaming must reproduce the resident Gram"
    );

    // --- Pass 2: exponentially-weighted covariance (forgetting factor).
    let lambda = 0.9f64;
    let mut rng = StdRng::seed_from_u64(77);
    let mut ewma: GramAccumulator<f64> = ctx.gram_accumulator(n);
    for _ in 0..batches {
        ewma.decay(lambda);
        let chunk = next_batch(&mut rng, rows, n);
        ewma.push(chunk.as_ref());
    }
    let g = ewma.finish().into_dense();
    // Geometric weighting bounds the effective sample mass at
    // rows / (1 - lambda) regardless of stream length.
    let eff = rows as f64 / (1.0 - lambda);
    let trace: f64 = (0..n).map(|j| g[(j, j)]).sum();
    println!(
        "EWMA(lambda={lambda}): trace {trace:.1} vs effective-mass cap {:.1} x n x var",
        eff
    );
    println!("done: a stream of any length costs O(n^2) resident memory");
}
