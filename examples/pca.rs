//! Principal component analysis on synthetic correlated data.
//!
//! ```text
//! cargo run --release --example pca [-- <samples> <features> <threads>]
//! ```
//!
//! PCA is the §1 motivation "project vectors onto the space spanned by
//! the columns of A" made concrete: the covariance matrix of a centered
//! data matrix `X` is `X^T X / (m - 1)` — exactly the product AtA
//! accelerates. This example
//!
//! 1. samples `m` observations of `n` features from a planted two-factor
//!    model (two orthogonal directions with large variance + isotropic
//!    noise),
//! 2. centers the columns and computes the covariance with the
//!    multi-threaded AtA-S,
//! 3. diagonalizes it with the workspace's Jacobi eigensolver, and
//! 4. checks that the top two principal components recover the planted
//!    directions (up to sign) and that their explained variance matches
//!    the construction.

use ata::linalg::eigen::jacobi_eigen;
use ata::mat::Matrix;
use ata::AtaContext;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::num::NonZeroUsize;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4000);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    assert!(n >= 8, "need at least 8 features");

    // Planted factors: two fixed orthogonal unit directions.
    let dir1: Vec<f64> = (0..n).map(|j| if j < n / 2 { 1.0 } else { 0.0 }).collect();
    let dir2: Vec<f64> = (0..n).map(|j| if j >= n / 2 { 1.0 } else { 0.0 }).collect();
    let norm1 = (n / 2) as f64;
    let norm2 = (n - n / 2) as f64;
    let (s1, s2, noise) = (6.0, 3.0, 0.5); // factor scales and noise sigma

    let mut rng = StdRng::seed_from_u64(2021);
    let mut x = Matrix::<f64>::zeros(m, n);
    for i in 0..m {
        let f1: f64 = s1 * (rng.random_range(-1.0..1.0f64) * 3.0f64.sqrt()); // var s1^2
        let f2: f64 = s2 * (rng.random_range(-1.0..1.0f64) * 3.0f64.sqrt());
        for j in 0..n {
            let signal = f1 * dir1[j] / norm1.sqrt() + f2 * dir2[j] / norm2.sqrt();
            let eps: f64 = noise * (rng.random_range(-1.0..1.0f64) * 3.0f64.sqrt());
            x[(i, j)] = signal + eps;
        }
    }

    // Center columns.
    for j in 0..n {
        let mean: f64 = (0..m).map(|i| x[(i, j)]).sum::<f64>() / m as f64;
        for i in 0..m {
            x[(i, j)] -= mean;
        }
    }

    // Covariance via AtA-S.
    println!("data: {m} observations x {n} features; covariance via AtA-S ({threads} threads)");
    let t = std::time::Instant::now();
    let ctx = AtaContext::shared(NonZeroUsize::new(threads.max(1)).expect("clamped"));
    let mut cov = ctx.gram(x.as_ref());
    let secs = t.elapsed().as_secs_f64();
    let scale = 1.0 / (m as f64 - 1.0);
    for i in 0..n {
        for j in 0..n {
            cov[(i, j)] *= scale;
        }
    }
    println!("covariance computed in {secs:.3} s");

    // Eigen-decompose (Jacobi returns ascending order).
    let (eigvals, eigvecs) = jacobi_eigen(&cov, 1e-12);
    let total_var: f64 = eigvals.iter().sum();
    let top: Vec<(f64, usize)> = {
        let mut v: Vec<(f64, usize)> = eigvals.iter().cloned().zip(0..n).collect();
        v.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN eigenvalues"));
        v.into_iter().take(4).collect()
    };

    println!("\ntop eigenvalues (explained variance):");
    for (ev, idx) in &top {
        println!(
            "  lambda = {ev:9.4}  ({:5.1}% of total)",
            100.0 * ev / total_var
        );
        let _ = idx;
    }

    // Alignment of the top two eigenvectors with the planted directions.
    let align = |vec_idx: usize, dir: &[f64], dnorm: f64| -> f64 {
        let dot: f64 = (0..n)
            .map(|j| eigvecs[(j, vec_idx)] * dir[j] / dnorm.sqrt())
            .sum();
        dot.abs()
    };
    let a1 = align(top[0].1, &dir1, norm1).max(align(top[0].1, &dir2, norm2));
    let a2 = align(top[1].1, &dir1, norm1).max(align(top[1].1, &dir2, norm2));
    println!("\n|<pc1, planted>| = {a1:.4} (1.0 = perfect recovery)");
    println!("|<pc2, planted>| = {a2:.4}");
    assert!(
        a1 > 0.98 && a2 > 0.98,
        "PCA failed to recover planted factors"
    );

    // The noise floor: remaining eigenvalues should sit near noise^2.
    let floor: f64 = eigvals.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "noise floor eigenvalue = {floor:.4} (construction: ~{:.4})",
        noise * noise
    );
    println!("\nPCA recovered both planted components — covariance path exercised end to end.");
}
