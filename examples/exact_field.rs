//! AtA over exact fields — the "works on any algebraic field" claim, live.
//!
//! ```text
//! cargo run --release --example exact_field
//! ```
//!
//! §1 of the paper contrasts AtA with Dumas et al. (ISSAC 2020), whose
//! faster `A A^T` needs skew-orthogonal matrices and therefore excludes
//! `R` and `Q`. AtA only needs ring operations, so it runs over *exact*
//! scalars unchanged. This example demonstrates both directions:
//!
//! 1. **Rationals** (`Q64`): the Gram matrix of a Hilbert-like design
//!    matrix — catastrophically ill-conditioned in floating point — is
//!    computed exactly by the full Strassen-based recursion, with a
//!    measured f64 error for contrast.
//! 2. **Prime field** (`Gf31 = GF(2^31 - 1)`): a random matrix's Gram
//!    product agrees bit-for-bit with the naive oracle — the setting of
//!    Dumas et al., met on their ground.

use ata::field::{Gf31, Q64};
use ata::kernels::CacheConfig;
use ata::mat::{reference, Matrix, Scalar};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn rational_demo() {
    // Hilbert-like tall matrix: A[i][j] = 1 / (i + j + 1).
    let (m, n) = (12usize, 9usize);
    let a_q = Matrix::from_fn(m, n, |i, j| Q64::new(1, (i + j + 1) as i64));

    // Exact Gram via the full recursion (tiny base so Strassen recurses).
    let cfg = CacheConfig::with_words(8);
    let mut g_q = Matrix::<Q64>::zeros(n, n);
    ata::core::ata_into(Q64::ONE, a_q.as_ref(), &mut g_q.as_mut(), &cfg);

    // Exact naive oracle.
    let mut g_oracle = Matrix::<Q64>::zeros(n, n);
    reference::syrk_ln(Q64::ONE, a_q.as_ref(), &mut g_oracle.as_mut());

    let mut exact = true;
    for i in 0..n {
        for j in 0..=i {
            exact &= g_q[(i, j)] == g_oracle[(i, j)];
        }
    }
    println!("== Q (exact rationals) ==");
    println!("A: {m}x{n} Hilbert-like, A[i][j] = 1/(i+j+1)");
    println!("Strassen-based AtA == naive oracle, entrywise: {exact}");
    assert!(exact, "rational AtA must be exact");

    // The same computation in f32 for contrast: Hilbert entries are not
    // representable, so every step rounds.
    let a_32 = Matrix::from_fn(m, n, |i, j| 1.0f32 / (i + j + 1) as f32);
    let mut g_32 = Matrix::<f32>::zeros(n, n);
    ata::core::ata_into(1.0f32, a_32.as_ref(), &mut g_32.as_mut(), &cfg);
    let mut max_err = 0.0f64;
    for i in 0..n {
        for j in 0..=i {
            max_err = max_err.max((g_32[(i, j)] as f64 - g_q[(i, j)].to_f64()).abs());
        }
    }
    let (i, j) = (n - 1, n - 2);
    println!(
        "G[{i}][{j}] exactly = {} = {:.12}...",
        g_q[(i, j)],
        g_q[(i, j)].to_f64()
    );
    println!("f32 max entrywise error = {max_err:.2e}; rational error = 0 by construction\n");
}

fn prime_field_demo() {
    let (m, n) = (24usize, 20usize);
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::from_fn(m, n, |_, _| Gf31::new(rng.random_range(0i64..1 << 31)));

    let cfg = CacheConfig::with_words(8);
    let mut g = Matrix::<Gf31>::zeros(n, n);
    ata::core::ata_into(Gf31::ONE, a.as_ref(), &mut g.as_mut(), &cfg);

    let mut oracle = Matrix::<Gf31>::zeros(n, n);
    reference::syrk_ln(Gf31::ONE, a.as_ref(), &mut oracle.as_mut());

    let mut equal = true;
    for i in 0..n {
        for j in 0..=i {
            equal &= g[(i, j)] == oracle[(i, j)];
        }
    }
    println!("== GF(2^31 - 1) (prime field) ==");
    println!("A: {m}x{n} uniform over the field");
    println!("Strassen-based AtA == naive oracle, entrywise: {equal}");
    assert!(equal, "prime-field AtA must be exact");
    println!(
        "sample entries: G[0][0] = {}, G[{}][{}] = {}",
        g[(0, 0)],
        n - 1,
        0,
        g[(n - 1, 0)]
    );
    println!("(finite fields have no rounding: Strassen's subtractions are harmless)");
}

fn main() {
    println!("AtA on exact algebraic fields (paper §1: 'works on any algebraic field')\n");
    rational_demo();
    prime_field_demo();
    println!("\nBoth fields verified — every +, -, x of the recursion happened exactly.");
}
