//! SVD via the Gram matrix — §1 of the paper: "the Singular Value
//! Decomposition (SVD) of a matrix A can be computed by studying the
//! eigenproblem for A^T A and A A^T".
//!
//! Builds a matrix with a *known* spectrum (`A = U diag(sigma) V^T` from
//! orthonormalized random factors), computes the Gram matrix with AtA,
//! diagonalizes it with the Jacobi eigensolver, and checks the recovered
//! singular values, the Frobenius identity and the condition number.
//!
//! ```text
//! cargo run --release --example svd [-- <m> <n>]
//! ```

use ata::linalg::ortho::mgs_orthonormalize;
use ata::linalg::svd::{condition_number, gram_svd};
use ata::mat::{gen, Matrix};
use ata::AtaOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(400);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    assert!(m >= n);

    // Planted spectrum: sigma_i = n - i (so condition number = n).
    let sigma_true: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
    println!("planting spectrum sigma = {}..1 into a {m} x {n} matrix", n);

    let u = mgs_orthonormalize(gen::standard::<f64>(10, m, n).as_ref());
    let v = mgs_orthonormalize(gen::standard::<f64>(11, n, n).as_ref());
    // A = U diag(sigma) V^T.
    let a = Matrix::from_fn(m, n, |i, j| {
        (0..n)
            .map(|k| u[(i, k)] * sigma_true[k] * v[(j, k)])
            .sum::<f64>()
    });

    let opts = AtaOptions::with_threads(4);
    let (sigma, v_rec) = gram_svd(a.as_ref(), &opts);

    let worst = sigma
        .iter()
        .zip(&sigma_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |sigma - sigma_true|   = {worst:.3e}");
    assert!(
        worst < 1e-8,
        "recovered spectrum must match the planted one"
    );

    // Frobenius identity: sum sigma^2 = ||A||_F^2.
    let sum_sq: f64 = sigma.iter().map(|x| x * x).sum();
    let frob_sq = a.as_ref().frobenius().powi(2);
    println!(
        "|sum sigma^2 - ||A||_F^2|  = {:.3e}",
        (sum_sq - frob_sq).abs()
    );
    assert!((sum_sq - frob_sq).abs() < 1e-6 * frob_sq);

    // Right singular vectors: ||A v_i|| = sigma_i.
    let mut worst_v = 0.0f64;
    for c in 0..n {
        let mut norm_sq = 0.0;
        for i in 0..m {
            let av: f64 = (0..n).map(|j| a[(i, j)] * v_rec[(j, c)]).sum();
            norm_sq += av * av;
        }
        worst_v = worst_v.max((norm_sq.sqrt() - sigma[c]).abs());
    }
    println!("max | ||A v_i|| - sigma_i| = {worst_v:.3e}");
    assert!(worst_v < 1e-7);

    let kappa = condition_number(a.as_ref(), &opts);
    println!("condition number           = {kappa:.4} (planted: {})", n);
    assert!((kappa - n as f64).abs() < 1e-6 * n as f64);

    println!("SVD via A^T A eigenproblem — OK");
}
