//! Orthogonality checking with `A^T A` — the paper's §1 observes that
//! the Gram product "is a straightforward, yet effective, method to
//! check for orthogonality", e.g. inside Gram–Schmidt.
//!
//! This example orthonormalizes a random basis with `ata-linalg`'s
//! modified Gram–Schmidt, then verifies `Q^T Q = I` with a single AtA
//! product instead of `n^2` explicit dot products.
//!
//! ```text
//! cargo run --release --example gram_schmidt [-- <m> <n>]
//! ```

use ata::linalg::ortho::{mgs_orthonormalize, orthogonality_defect};
use ata::mat::gen;
use ata::AtaOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1500);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    assert!(m >= n);

    println!("orthonormalizing {n} vectors of dimension {m} (modified Gram-Schmidt)");
    let a = gen::standard::<f64>(99, m, n);
    let q = mgs_orthonormalize(a.as_ref());

    let opts = AtaOptions::with_threads(4);
    let dev = orthogonality_defect(q.as_ref(), &opts);
    println!("max |Q^T Q - I| = {dev:.3e}");
    assert!(dev < 1e-10, "Q failed the orthogonality check");

    // Sanity: the original basis was far from orthogonal.
    let dev_a = orthogonality_defect(a.as_ref(), &AtaOptions::serial());
    println!("max |A^T A - I| = {dev_a:.3e}  (original basis, for contrast)");
    assert!(dev_a > 1.0);

    println!("orthogonality verified with a single A^T A product — OK");
}
