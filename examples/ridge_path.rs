//! Ridge regression path: one Gram matrix, a whole lambda sweep.
//!
//! ```text
//! cargo run --release --example ridge_path [-- <samples> <features>]
//! ```
//!
//! The normal-equations workload of §1 with the twist that makes AtA's
//! speedup multiply: cross-validating the regularization strength needs
//! `(A^T A + lambda I) x = A^T b` for many lambdas, but `A^T A` only
//! once. This example fits a noisy polynomial with ridge regression,
//! sweeps lambda over six decades, and selects the best value on a
//! held-out split.

use ata::linalg::lstsq::residual_norm;
use ata::linalg::ridge::RidgeSolver;
use ata::mat::Matrix;
use ata::AtaOptions;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(600);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24);

    // Ground truth: a sparse coefficient vector over a polynomial
    // feature map of t in [-1, 1] (Chebyshev-ish basis via cos).
    let mut rng = StdRng::seed_from_u64(77);
    let coeff: Vec<f64> = (0..n)
        .map(|j| {
            if j % 5 == 0 {
                2.0 / (j + 1) as f64
            } else {
                0.0
            }
        })
        .collect();
    let noise = 0.05f64;

    let design = |rows: usize, seed: u64| -> (Matrix<f64>, Vec<f64>) {
        let mut r = StdRng::seed_from_u64(seed);
        let mut a = Matrix::<f64>::zeros(rows, n);
        let mut b = vec![0.0f64; rows];
        for i in 0..rows {
            let t: f64 = r.random_range(-1.0..1.0);
            for j in 0..n {
                a[(i, j)] = (j as f64 * t.acos()).cos(); // Chebyshev T_j(t)
            }
            b[i] = (0..n).map(|j| coeff[j] * a[(i, j)]).sum::<f64>()
                + noise * r.random_range(-1.0..1.0);
        }
        (a, b)
    };

    let (a_train, b_train) = design(m, 1);
    let (a_test, b_test) = design(m / 3, 2);
    let _ = &mut rng;

    println!(
        "ridge path: {m} train / {} test samples, {n} Chebyshev features",
        m / 3
    );

    // One AtA call...
    let t0 = std::time::Instant::now();
    let solver = RidgeSolver::new(a_train.as_ref(), &b_train, &AtaOptions::with_threads(2));
    let t_gram = t0.elapsed().as_secs_f64();

    // ...then a factorization per lambda.
    let lambdas: Vec<f64> = (-5..=1).map(|e| 10f64.powi(e)).collect();
    let t0 = std::time::Instant::now();
    let path = solver.solve_path(&lambdas).expect("SPD for lambda > 0");
    let t_path = t0.elapsed().as_secs_f64();

    println!(
        "gram (AtA): {:.1} ms; {} solves: {:.1} ms total\n",
        t_gram * 1e3,
        lambdas.len(),
        t_path * 1e3
    );
    println!("  lambda     train RMS   test RMS    ||x||");
    let mut best = (f64::INFINITY, 0usize);
    for (idx, (lambda, x)) in lambdas.iter().zip(&path).enumerate() {
        let train = residual_norm(a_train.as_ref(), x, &b_train) / (m as f64).sqrt();
        let test = residual_norm(a_test.as_ref(), x, &b_test) / ((m / 3) as f64).sqrt();
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        println!("  {lambda:8.0e}   {train:9.5}  {test:9.5}  {norm:7.3}");
        if test < best.0 {
            best = (test, idx);
        }
    }
    let (best_rms, best_idx) = best;
    println!(
        "\nselected lambda = {:.0e} (test RMS {best_rms:.5})",
        lambdas[best_idx]
    );

    // Sanity: the selected model recovers the planted sparse pattern.
    let x = &path[best_idx];
    let recovered: Vec<usize> = (0..n).filter(|&j| x[j].abs() > 0.15).collect();
    let planted: Vec<usize> = (0..n).filter(|&j| coeff[j].abs() > 0.15).collect();
    println!("planted strong coefficients at {planted:?}; recovered {recovered:?}");
    assert!(
        planted.iter().all(|j| recovered.contains(j)),
        "selected model must keep every strong planted coefficient"
    );
    assert!(
        best_rms < 3.0 * noise,
        "test error should approach the noise floor"
    );
    println!(
        "\nOK — one Gram matrix amortized across {} regularized solves.",
        lambdas.len()
    );
}
