//! Distributed `A^T A` on the simulated cluster: AtA-D versus the
//! pdsyrk-like baseline, with traffic and simulated-time reports.
//!
//! ```text
//! cargo run --release --example distributed [-- <m> <n> <ranks>]
//! ```
//!
//! Reproduces, at example scale, the Figure 6 methodology: both
//! algorithms run on the same LogGP cost model (`CostModel::terastat`),
//! compute their numerics for real, and report the simulated critical
//! path plus exact message/word counts.

use ata::dist::baselines::pdsyrk_like;
use ata::dist::traffic::ata_d_traffic;
use ata::dist::{ata_d, AtaDConfig, WireFormat};
use ata::mat::{gen, reference};
use ata::mpisim::{run, CostModel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(768);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(768);
    let ranks: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    println!("A: {m} x {n} (f64), simulated cluster with {ranks} ranks (TeraStat cost model)");
    let a = gen::standard::<f64>(11, m, n);
    let oracle = {
        let mut c = ata::Matrix::<f64>::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        c
    };

    // --- AtA-D ---
    let cfg = AtaDConfig::default();
    let a_ref = &a;
    let report = run(ranks, CostModel::terastat(), move |comm| {
        let input = if comm.rank() == 0 { Some(a_ref) } else { None };
        ata_d(input, m, n, comm, &cfg)
    });
    let c = report.results[0].as_ref().expect("root result");
    let diff = c.max_abs_diff_lower(&oracle);
    println!("\nAtA-D:");
    println!(
        "  simulated elapsed (critical path): {:.4} s",
        report.critical_path()
    );
    println!(
        "  total messages: {}, total words: {}",
        report.total_msgs(),
        report.total_words()
    );
    println!("  max |C - oracle| (lower): {diff:.3e}");
    assert!(diff < 1e-8);

    // --- pdsyrk-like baseline ---
    let a_ref = &a;
    let report_b = run(ranks, CostModel::terastat(), move |comm| {
        let input = if comm.rank() == 0 { Some(a_ref) } else { None };
        pdsyrk_like(input, m, n, comm)
    });
    let cb = report_b.results[0].as_ref().expect("root result");
    let diff_b = cb.max_abs_diff_lower(&oracle);
    println!("\npdsyrk-like baseline:");
    println!(
        "  simulated elapsed (critical path): {:.4} s",
        report_b.critical_path()
    );
    println!(
        "  total messages: {}, total words: {}",
        report_b.total_msgs(),
        report_b.total_words()
    );
    println!("  max |C - oracle| (lower): {diff_b:.3e}");
    assert!(diff_b < 1e-8);

    let ratio = report_b.critical_path() / report.critical_path();
    println!("\nAtA-D speedup over pdsyrk-like (simulated): {ratio:.2}x");

    // --- Wire formats (§4.3.1): packed vs dense retrieval ---
    let dense = ata_d_traffic(
        m,
        n,
        ranks,
        &AtaDConfig {
            wire: WireFormat::Dense,
            ..AtaDConfig::default()
        },
    );
    let packed = ata_d_traffic(m, n, ranks, &cfg);
    println!("\nwire formats (predicted, audited exact in tests):");
    println!(
        "  root recv words: dense {} -> packed {} ({:.1}% cut)",
        dense.root_recv_words(),
        packed.root_recv_words(),
        100.0 * (1.0 - packed.root_recv_words() as f64 / dense.root_recv_words().max(1) as f64)
    );
    println!("both agree with the oracle — OK");
}
