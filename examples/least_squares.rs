//! Least squares via the normal equations — the paper's motivating
//! application (§1): solve the overdetermined system `A x ≈ b` by
//! forming `A^T A x = A^T b` with AtA and factoring the (symmetric
//! positive definite) Gram matrix with Cholesky — all through the
//! `ata-linalg` crate.
//!
//! ```text
//! cargo run --release --example least_squares [-- <m> <n>]
//! ```

use ata::linalg::lstsq::{residual_norm, solve_normal_equations};
use ata::mat::gen;
use ata::AtaOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(120);
    assert!(m > n, "least squares needs a tall system");

    println!("overdetermined system: {m} equations, {n} unknowns");

    // Well-conditioned tall A and a ground-truth solution x*.
    let a = gen::tall_well_conditioned::<f64>(7, m, n);
    let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();

    // b = A x* + tiny perturbation (so the system is inconsistent, as a
    // real least-squares problem would be).
    let mut b = vec![0.0f64; m];
    for i in 0..m {
        for j in 0..n {
            b[i] += a[(i, j)] * x_true[j];
        }
        b[i] += 1e-9 * ((i * 31 % 17) as f64 - 8.0);
    }

    // One call: G = A^T A via AtA (4 threads), Cholesky, two solves.
    let opts = AtaOptions::with_threads(4);
    let x = solve_normal_equations(a.as_ref(), &b, &opts).expect("A has full column rank");

    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |x - x*|    = {err:.3e}");
    assert!(err < 1e-6, "normal-equation solve must recover x*");

    let res = residual_norm(a.as_ref(), &x, &b);
    println!("residual 2-norm = {res:.3e}");
    assert!(res < 1e-6);

    println!("least-squares solve via AtA normal equations — OK");
}
