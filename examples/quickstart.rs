//! Quickstart: the plan–execute API, three backends, one oracle.
//!
//! ```text
//! cargo run --release --example quickstart [-- <m> <n> <threads>]
//! ```
//!
//! Builds a random `m x n` matrix and computes its Gram matrix with
//! (1) the naive textbook oracle, (2) a serial `AtaContext` and (3) a
//! shared-memory context with a persistent worker pool, then reports
//! agreement and timings — including the per-call win from reusing one
//! `AtaPlan` across repeated executions.

use ata::mat::{gen, reference};
use ata::AtaContext;
use std::num::NonZeroUsize;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let threads = NonZeroUsize::new(threads.max(1)).expect("clamped to >= 1");

    println!("A: {m} x {n} (f64, uniform in [-1, 1)), threads = {threads}");
    let a = gen::standard::<f64>(2021, m, n);

    let t0 = Instant::now();
    let g_naive = reference::gram(a.as_ref());
    let t_naive = t0.elapsed().as_secs_f64();

    // Serial context: Algorithm 1 with a cached Strassen arena.
    let serial_ctx = AtaContext::serial();
    let t0 = Instant::now();
    let g_serial = serial_ctx.gram(a.as_ref());
    let t_serial = t0.elapsed().as_secs_f64();

    // Shared-memory context: AtA-S on a persistent worker pool.
    let par_ctx = AtaContext::shared(threads);
    let plan = par_ctx.plan::<f64>(m, n);
    let t0 = Instant::now();
    let g_par = plan.execute(a.as_ref()).into_dense();
    let t_par = t0.elapsed().as_secs_f64();

    println!("naive oracle : {t_naive:8.3} s");
    println!(
        "AtA (serial) : {t_serial:8.3} s   speedup vs naive: {:.2}x",
        t_naive / t_serial
    );
    println!(
        "AtA-S ({threads} thr.): {t_par:8.3} s   speedup vs naive: {:.2}x",
        t_naive / t_par
    );

    // The serving-loop shape: the plan (task tree + arenas) is reused,
    // so repeated calls skip all planning and allocation.
    let reps = 5usize;
    let mut c = ata::Matrix::<f64>::zeros(n, n);
    let t0 = Instant::now();
    for _ in 0..reps {
        plan.execute_into(a.as_ref(), &mut c.as_mut());
    }
    let t_reused = t0.elapsed().as_secs_f64() / reps as f64;
    println!("AtA-S reused plan: {t_reused:8.3} s/call over {reps} calls");

    let d1 = g_serial.max_abs_diff(&g_naive);
    let d2 = g_par.max_abs_diff(&g_naive);
    let d3 = c.max_abs_diff(&g_naive);
    println!("max |AtA - naive|   = {d1:.3e}");
    println!("max |AtA-S - naive| = {d2:.3e}");
    assert!(g_serial.is_symmetric(0.0) && g_par.is_symmetric(0.0) && c.is_symmetric(0.0));
    let tol = ata::mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
    assert!(
        d1 <= tol && d2 <= tol && d3 <= tol,
        "results disagree beyond tolerance {tol:.3e}"
    );
    println!("all backends agree within {tol:.3e} — OK");
}
