//! Quickstart: compute `A^T A` three ways and compare.
//!
//! ```text
//! cargo run --release --example quickstart [-- <m> <n> <threads>]
//! ```
//!
//! Builds a random `m x n` matrix, computes its Gram matrix with
//! (1) the naive textbook oracle, (2) the serial AtA recursion and
//! (3) the shared-memory AtA-S, then reports agreement and timings.

use ata::mat::{gen, reference};
use ata::{gram_with, AtaOptions};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("A: {m} x {n} (f64, uniform in [-1, 1)), threads = {threads}");
    let a = gen::standard::<f64>(2021, m, n);

    let t0 = Instant::now();
    let g_naive = reference::gram(a.as_ref());
    let t_naive = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let g_serial = gram_with(a.as_ref(), &AtaOptions::serial());
    let t_serial = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let g_par = gram_with(a.as_ref(), &AtaOptions::with_threads(threads));
    let t_par = t0.elapsed().as_secs_f64();

    println!("naive oracle : {t_naive:8.3} s");
    println!(
        "AtA (serial) : {t_serial:8.3} s   speedup vs naive: {:.2}x",
        t_naive / t_serial
    );
    println!(
        "AtA-S ({threads} thr.): {t_par:8.3} s   speedup vs naive: {:.2}x",
        t_naive / t_par
    );

    let d1 = g_serial.max_abs_diff(&g_naive);
    let d2 = g_par.max_abs_diff(&g_naive);
    println!("max |AtA - naive|   = {d1:.3e}");
    println!("max |AtA-S - naive| = {d2:.3e}");
    assert!(g_serial.is_symmetric(0.0) && g_par.is_symmetric(0.0));
    let tol = ata::mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
    assert!(
        d1 <= tol && d2 <= tol,
        "results disagree beyond tolerance {tol:.3e}"
    );
    println!("all three agree within {tol:.3e} — OK");
}
